//! Exit-code and output contract of the `sim` binary's durability paths
//! (`--journal` / `--resume`, DESIGN.md §14) and the `sim lint` analyzer
//! (DESIGN.md §15), exercised end-to-end against the real executable:
//! 0 on full completion / a clean tree, 1 with a salvage report on
//! partial completion or with diagnostics on lint findings, 2 on usage
//! errors such as resuming against a journal from a different code
//! version or filtering by an unknown lint rule.

use std::path::PathBuf;
use std::process::{Command, Output};

use fusion_core::journal;

fn sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sim"))
        .args(args)
        .output()
        .expect("sim binary must run")
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fusion_cli_{}_{name}", std::process::id()))
}

fn exit_code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("sim must exit, not die on a signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Removes `"key":<value>,` from a JSON row — the timing/memo fields the
/// byte-identity comparison deliberately ignores (the same set the memo
/// A/B CI gate strips).
fn strip_field(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let Some(start) = line.find(&pat) else {
        return line.to_string();
    };
    let rest = &line[start..];
    let end = rest.find(',').map(|i| i + 1).unwrap_or(rest.len());
    format!("{}{}", &line[..start], &rest[end..])
}

fn strip_timing(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .map(|l| {
            let mut l = l.to_string();
            for key in ["wall_ms", "queue_delay_ms", "refs_per_sec", "memo"] {
                l = strip_field(&l, key);
            }
            l
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn resume_without_journal_is_a_usage_error() {
    let out = sim(&["sweep", "--scale", "tiny", "--resume"]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr(&out).contains("--resume requires --journal"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn journal_then_resume_round_trips_byte_identical() {
    let wal = temp("roundtrip.jsonl");
    let wal_s = wal.to_str().unwrap();
    let first = sim(&["sweep", "--scale", "tiny", "--json", "--journal", wal_s]);
    assert_eq!(exit_code(&first), 0, "{}", stderr(&first));

    let resumed = sim(&[
        "sweep",
        "--scale",
        "tiny",
        "--json",
        "--journal",
        wal_s,
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 0, "{}", stderr(&resumed));
    assert!(
        stderr(&resumed).contains("grid point(s) resumed"),
        "{}",
        stderr(&resumed)
    );
    assert_eq!(
        strip_timing(&first.stdout),
        strip_timing(&resumed.stdout),
        "resumed sweep diverged from the journaled run"
    );
    std::fs::remove_file(&wal).ok();
}

#[test]
fn partial_sweep_exits_one_with_salvage_then_resume_completes() {
    let wal = temp("partial.jsonl");
    let wal_s = wal.to_str().unwrap();
    let partial = sim(&[
        "sweep",
        "--scale",
        "tiny",
        "--json",
        "--journal",
        wal_s,
        "--inject",
        "7:3",
    ]);
    assert_eq!(exit_code(&partial), 1, "{}", stderr(&partial));
    let err = stderr(&partial);
    assert!(err.contains("salvage"), "{err}");
    assert!(err.contains("\"salvage\":1"), "{err}");
    assert!(
        err.contains(&format!("--journal {wal_s} --resume")),
        "{err}"
    );

    let salvage_path = format!("{wal_s}.salvage.json");
    let salvage = std::fs::read_to_string(&salvage_path).expect("salvage file must exist");
    assert!(salvage.contains("\"salvage\":1"), "{salvage}");
    assert!(salvage.contains("\"failures\":["), "{salvage}");

    // The advertised resume command finishes the job: only the failed
    // points re-run, and this time they come back clean.
    let resumed = sim(&[
        "sweep",
        "--scale",
        "tiny",
        "--json",
        "--journal",
        wal_s,
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 0, "{}", stderr(&resumed));
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&salvage_path).ok();
}

#[test]
fn lint_clean_workspace_exits_zero() {
    // Run against the real repository: the workspace must stay clean
    // under its own analyzer (the same invariant CI enforces).
    let out = sim(&["lint"]);
    assert_eq!(
        exit_code(&out),
        0,
        "workspace lint regressed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 finding(s)"), "{text}");
}

#[test]
fn lint_dirty_workspace_exits_one_with_json_diagnostics() {
    // A scratch workspace with one violation per a few rules: findings
    // must land as one-per-line JSON rows and flip the exit to 1.
    let root = temp("lintws");
    let src = root.join("crates").join("dirty").join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "use std::collections::HashMap;\nfn f(n: u64) -> u32 {\n    let m: HashMap<u64, u64> = HashMap::new();\n    drop(m);\n    n as u32\n}\n",
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_sim"))
        .args(["lint", "--json"])
        .current_dir(&root)
        .output()
        .expect("sim binary must run");
    assert_eq!(exit_code(&out), 1, "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\": 1"), "{text}");
    assert!(text.contains("\"clean\": false"), "{text}");
    assert!(text.contains("\"rule\": \"std-map\""), "{text}");
    assert!(text.contains("\"rule\": \"cast-truncate\""), "{text}");
    assert!(text.contains("crates/dirty/src/lib.rs"), "{text}");

    // --rule narrows to one pass: the cast finding disappears.
    let out = Command::new(env!("CARGO_BIN_EXE_sim"))
        .args(["lint", "--json", "--rule", "std-map"])
        .current_dir(&root)
        .output()
        .expect("sim binary must run");
    assert_eq!(exit_code(&out), 1, "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rules\": [\"std-map\"]"), "{text}");
    assert!(!text.contains("cast-truncate"), "{text}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lint_unknown_rule_is_a_usage_error() {
    let out = sim(&["lint", "--rule", "bogus-rule"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("unknown rule"), "{}", stderr(&out));
}

#[test]
fn mismatched_code_version_resume_is_a_usage_error() {
    let wal = temp("codever.jsonl");
    let wal_s = wal.to_str().unwrap();
    let first = sim(&["sweep", "--scale", "tiny", "--json", "--journal", wal_s]);
    assert_eq!(exit_code(&first), 0, "{}", stderr(&first));

    // Forge a journal from "another" binary: same rows, header resealed
    // with a bogus code version.
    let text = std::fs::read_to_string(&wal).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let bogus = journal::encode_header(&journal::JournalHeader {
        scale: "tiny".to_string(),
        code_version: "9.9.9+wal999".to_string(),
        grid: 196,
    });
    lines[0] = bogus;
    std::fs::write(&wal, format!("{}\n", lines.join("\n"))).unwrap();

    let resumed = sim(&[
        "sweep",
        "--scale",
        "tiny",
        "--json",
        "--journal",
        wal_s,
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 2, "{}", stderr(&resumed));
    assert!(
        stderr(&resumed).contains("code version"),
        "{}",
        stderr(&resumed)
    );
    std::fs::remove_file(&wal).ok();
}
