//! Shared harness for regenerating every table and figure of the FUSION
//! (ISCA 2015) evaluation.
//!
//! The `tables` binary prints the rows; the Criterion benches in
//! `benches/` time the same regeneration paths. Each table/figure has one
//! `render_*` function returning the formatted text so both entry points
//! (and the integration tests) share the exact same computation.

use std::fmt::Write as _;
use std::sync::Arc;

use fusion_accel::analysis::{self, dma_windows, forward_pairs};
use fusion_accel::Workload;
use fusion_core::{SimResult, Sweep, SweepJob, SystemKind, TraceCache};
use fusion_energy::Component;
use fusion_types::hash::FxHashSet;
use fusion_types::{SystemConfig, WritePolicy, CACHE_BLOCK_BYTES, FLIT_BYTES};
use fusion_workloads::{all_suites, Scale, SuiteId};

/// All simulations needed for one suite's rows.
#[derive(Debug)]
pub struct SuiteRun {
    /// Suite identity.
    pub id: SuiteId,
    /// The workload trace, shared with the sweep pool that produced the
    /// results (materialized once per suite).
    pub workload: Arc<Workload>,
    /// SCRATCH result (small config).
    pub scratch: SimResult,
    /// SHARED result (small config).
    pub shared: SimResult,
    /// FUSION result (small config).
    pub fusion: SimResult,
    /// FUSION-Dx result (small config).
    pub fusion_dx: SimResult,
    /// FUSION with a write-through L0X (Table 4).
    pub fusion_wt: SimResult,
    /// FUSION at the LARGE configuration (Figure 7).
    pub fusion_large: SimResult,
}

/// The six `(system, config)` variants the evaluation needs per suite, in
/// the fixed order [`SuiteRun::simulate_suites`] reassembles them in.
fn suite_variants() -> [(SystemKind, SystemConfig); 6] {
    let small = SystemConfig::small();
    [
        (SystemKind::Scratch, small.clone()),
        (SystemKind::Shared, small.clone()),
        (SystemKind::Fusion, small.clone()),
        (SystemKind::FusionDx, small.clone()),
        (
            SystemKind::Fusion,
            small.with_write_policy(WritePolicy::WriteThrough),
        ),
        (SystemKind::Fusion, SystemConfig::large()),
    ]
}

impl SuiteRun {
    /// Runs every configuration the evaluation needs for `id`.
    pub fn simulate(id: SuiteId, scale: Scale) -> SuiteRun {
        Self::simulate_suites(&[id], scale, None)
            .pop()
            .expect("one suite in, one run out")
    }

    /// Runs all seven suites over the shared sweep pool.
    pub fn simulate_all(scale: Scale) -> Vec<SuiteRun> {
        Self::simulate_suites(&all_suites(), scale, None)
    }

    /// Runs the given suites as one sweep grid: each suite's trace is
    /// materialized once and every `(suite, variant)` job fans out over
    /// the worker pool ([`fusion_core::sweep`]). `threads` overrides the
    /// pool size (`None` = `available_parallelism`).
    pub fn simulate_suites(
        suites: &[SuiteId],
        scale: Scale,
        threads: Option<usize>,
    ) -> Vec<SuiteRun> {
        let jobs: Vec<SweepJob> = suites
            .iter()
            .flat_map(|&id| {
                suite_variants()
                    .into_iter()
                    .map(move |(system, config)| SweepJob::new(system, id, config))
            })
            .collect();
        let traces = Arc::new(TraceCache::new());
        let mut sweep = Sweep::new(scale).with_trace_cache(Arc::clone(&traces));
        if let Some(t) = threads {
            sweep = sweep.threads(t);
        }
        let mut outcomes = sweep.run(jobs).into_iter();
        suites
            .iter()
            .map(|&id| {
                let mut next = || {
                    let o = outcomes
                        .next()
                        .expect("sweep returns one outcome per job, in grid order");
                    o.result
                        .unwrap_or_else(|e| panic!("table job {} failed: {e}", o.job.label()))
                };
                SuiteRun {
                    id,
                    scratch: next(),
                    shared: next(),
                    fusion: next(),
                    fusion_dx: next(),
                    fusion_wt: next(),
                    fusion_large: next(),
                    workload: traces.get(id, scale).workload,
                }
            })
            .collect()
    }
}

/// Fraction of a workload's touched blocks that are written (Table 4's
/// "% Dirty Blocks").
pub fn dirty_block_fraction(wl: &Workload) -> f64 {
    // Hot-map audit: one insert per trace reference; only len() is read,
    // so the deterministic FxHash set is a pure win.
    let mut touched: FxHashSet<u64> = FxHashSet::default();
    let mut dirty: FxHashSet<u64> = FxHashSet::default();
    for p in wl.phases.iter().filter(|p| !p.unit.is_host()) {
        for r in &p.refs {
            let b = r.block().index();
            touched.insert(b);
            if r.kind.is_write() {
                dirty.insert(b);
            }
        }
    }
    if touched.is_empty() {
        0.0
    } else {
        100.0 * dirty.len() as f64 / touched.len() as f64
    }
}

/// Table 1: accelerator characteristics.
pub fn render_table1(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 1: Accelerator Characteristics\n{:<12} {:>7} {:>6} {:>6} {:>6} {:>6} {:>4} {:>6}",
        "Function", "%Time", "%INT", "%FP", "%LD", "%ST", "MLP", "%SHR"
    )
    .unwrap();
    for run in runs {
        writeln!(out, "--- {} ---", run.id.label()).unwrap();
        let total_axc_cycles: u64 = run.fusion.accelerator_cycles().max(1);
        for f in run.workload.functions() {
            let (cycles, _, _) = run.fusion.function_totals(f);
            let mix = analysis::op_mix(&run.workload, f);
            let shr = analysis::sharing_degree(&run.workload, f);
            let mlp = run
                .workload
                .phases
                .iter()
                .find(|p| p.name == f)
                .map(|p| p.mlp)
                .unwrap_or(1);
            writeln!(
                out,
                "{:<12} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>4} {:>6.1}",
                f,
                100.0 * cycles as f64 / total_axc_cycles as f64,
                mix.int_pct,
                mix.fp_pct,
                mix.ld_pct,
                mix.st_pct,
                mlp,
                shr
            )
            .unwrap();
        }
    }
    out
}

/// Table 2: system parameters (configuration echo) plus the derived
/// per-access energy table (the CACTI-substitute of Section 4).
pub fn render_table2() -> String {
    let cfg = SystemConfig::small();
    let em = fusion_energy::EnergyModel::new(&cfg);
    let energies = format!(
        "Derived per-access energies (45 nm analytic model):\n\
         L0X {} (incl. +15% timestamp tag)  scratchpad {}  L1X {}\n\
         host L1 {}  L2+dir {}  DRAM {}  AX-TLB {}  AX-RMAP {}\n\
         int op {}  fp op {}\n",
        em.l0x_access,
        em.scratchpad_access,
        em.l1x_access,
        em.host_l1_access,
        em.l2_access,
        em.memory_access,
        em.tlb_lookup,
        em.rmap_lookup,
        em.int_op,
        em.fp_op,
    );
    energies
        + &format!(
            "Table 2: System parameters\n\
         L0X/scratchpad: {} KB, {} ways, {} cycle\n\
         Shared L1X: {} KB, {} banks, {} ways, {} cycles\n\
         Host L1: {} KB {}-way, {} cycles; L2: {} MB {}-way, {} cycles avg\n\
         Memory: 4ch open-page, {} cycles\n\
         Links: AXC-L1X {} pJ/B, L1X-L2 {} pJ/B, L0X-L0X {} pJ/B\n",
            cfg.l0x.capacity_bytes / 1024,
            cfg.l0x.ways,
            cfg.l0x.latency,
            cfg.l1x.capacity_bytes / 1024,
            cfg.l1x.banks,
            cfg.l1x.ways,
            cfg.l1x.latency,
            cfg.host_l1.capacity_bytes / 1024,
            cfg.host_l1.ways,
            cfg.host_l1.latency,
            cfg.l2.capacity_bytes / (1024 * 1024),
            cfg.l2.ways,
            cfg.l2.latency,
            cfg.memory_latency,
            cfg.link_axc_l1x.pj_per_byte,
            cfg.link_l1x_l2.pj_per_byte,
            cfg.link_l0x_l0x.pj_per_byte,
        )
}

/// Table 3: per-function execution metrics under FUSION.
pub fn render_table3(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 3: Accelerator Execution Metrics (FUSION)\n{:<12} {:>9} {:>6} {:>6}",
        "Function", "KCyc", "LT", "%En"
    )
    .unwrap();
    for run in runs {
        let total_mem: f64 = run
            .workload
            .functions()
            .iter()
            .map(|f| run.fusion.function_totals(f).1.value())
            .sum::<f64>()
            .max(1.0);
        let cache_compute = {
            let mem: f64 = run.fusion.memory_energy().value();
            let compute = run
                .fusion
                .energy
                .energy(Component::Compute)
                .value()
                .max(1.0);
            mem / compute
        };
        writeln!(
            out,
            "--- {} (cache/compute energy = {:.1}) ---",
            run.id.label(),
            cache_compute
        )
        .unwrap();
        for f in run.workload.functions() {
            let (cycles, mem_e, _) = run.fusion.function_totals(f);
            let lease = run
                .workload
                .phases
                .iter()
                .find(|p| p.name == f)
                .map(|p| p.lease)
                .unwrap_or(0);
            writeln!(
                out,
                "{:<12} {:>9.1} {:>6} {:>6.1}",
                f,
                cycles as f64 / 1000.0,
                lease,
                100.0 * mem_e.value() / total_mem
            )
            .unwrap();
        }
    }
    out
}

const FIG6A_COMPONENTS: [Component; 7] = [
    Component::AxcCache,
    Component::L1x,
    Component::L2,
    Component::LinkAxcL1xMsg,
    Component::LinkAxcL1xData,
    Component::LinkL1xL2Msg,
    Component::LinkL1xL2Data,
];

/// Figure 6a: dynamic energy breakdown normalized to SCRATCH.
pub fn render_fig6a(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6a: Cache-hierarchy dynamic energy, normalized to SCRATCH"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>3} {:>6}  {}",
        "bench",
        "sys",
        "norm",
        FIG6A_COMPONENTS
            .iter()
            .map(|c| format!("{:>8}", c.label().replace("L0X", "l0").replace(" ", "")))
            .collect::<Vec<_>>()
            .join(" ")
    )
    .unwrap();
    for run in runs {
        let base = run.scratch.cache_energy().value().max(1e-9);
        for (label, res) in [
            ("SC", &run.scratch),
            ("SH", &run.shared),
            ("FU", &run.fusion),
        ] {
            let norm = res.cache_energy().value() / base;
            let stacks: Vec<String> = FIG6A_COMPONENTS
                .iter()
                .map(|&c| format!("{:>8.3}", res.energy.energy(c).value() / base))
                .collect();
            writeln!(
                out,
                "{:<8} {:>3} {:>6.3}  {}",
                run.id.label(),
                label,
                norm,
                stacks.join(" ")
            )
            .unwrap();
        }
    }
    out
}

/// Figure 6b: cycle time normalized to SCRATCH.
pub fn render_fig6b(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6b: Cycles normalized to SCRATCH\n{:<8} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "bench", "SC cyc", "SC dma%", "SH", "FU", "FU-Dx"
    )
    .unwrap();
    for run in runs {
        let base = run.scratch.total_cycles.max(1) as f64;
        writeln!(
            out,
            "{:<8} {:>10} {:>8.2} {:>8.3} {:>8.3} {:>10.3}",
            run.id.label(),
            run.scratch.total_cycles,
            run.scratch.dma_time_fraction(),
            run.shared.total_cycles as f64 / base,
            run.fusion.total_cycles as f64 / base,
            run.fusion_dx.total_cycles as f64 / base,
        )
        .unwrap();
    }
    out
}

/// Figure 6c: link message/data breakdown.
pub fn render_fig6c(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6c: Link traffic (message/data counts)\n{:<8} {:>3} {:>10} {:>10} {:>10} {:>10}",
        "bench", "sys", "axc>l1msg", "axc<>l1dat", "l1>l2msg", "l1<>l2dat"
    )
    .unwrap();
    for run in runs {
        for (label, res) in [
            ("SC", &run.scratch),
            ("SH", &run.shared),
            ("FU", &run.fusion),
        ] {
            let t = res.traffic();
            writeln!(
                out,
                "{:<8} {:>3} {:>10} {:>10} {:>10} {:>10}",
                run.id.label(),
                label,
                t.msgs_axc_l1x,
                t.data_axc_l1x,
                t.msgs_l1x_l2,
                t.data_l1x_l2
            )
            .unwrap();
        }
    }
    out
}

/// Figure 6d (table): working sets and DMA volumes.
pub fn render_fig6d(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6d: Working set vs DMA volume\n{:<8} {:>9} {:>9} {:>8} {:>10}",
        "bench", "WSet(kB)", "DMA(kB)", "DMA/WS", "#transfers"
    )
    .unwrap();
    for run in runs {
        let ws = run.workload.working_set().kib();
        let dma_kb = (run.scratch.dma_blocks * CACHE_BLOCK_BYTES as u64) as f64 / 1024.0;
        writeln!(
            out,
            "{:<8} {:>9.0} {:>9.0} {:>8.1} {:>10}",
            run.id.label(),
            ws,
            dma_kb,
            dma_kb / ws.max(1e-9),
            run.scratch.dma_transfers
        )
        .unwrap();
    }
    out
}

/// Table 4: write-through vs write-back L0X bandwidth.
pub fn render_table4(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 4: AXC-L1X bandwidth in flits ({} bytes/flit)\n{:<8} {:>14} {:>12} {:>14}",
        FLIT_BYTES, "bench", "WriteThrough", "Writeback", "%DirtyBlocks"
    )
    .unwrap();
    for run in runs {
        writeln!(
            out,
            "{:<8} {:>14} {:>12} {:>14.1}",
            run.id.label(),
            run.fusion_wt.traffic().flits_axc_l1x.value(),
            run.fusion.traffic().flits_axc_l1x.value(),
            dirty_block_fraction(&run.workload)
        )
        .unwrap();
    }
    out
}

/// Table 5: FUSION-Dx forwarding savings.
pub fn render_table5(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 5: Inter-AXC forwarded blocks and energy savings (FUSION-Dx vs FUSION)\n\
         {:<8} {:>10} {:>10} {:>10}",
        "bench", "#FWD", "AXC$ -%", "AXC link -%"
    )
    .unwrap();
    for run in runs {
        let fwd = run.fusion_dx.tile.map(|t| t.fwd_l0_to_l0).unwrap_or(0);
        let cache = |r: &SimResult| {
            r.energy.energy(Component::AxcCache).value() + r.energy.energy(Component::L1x).value()
        };
        let link = |r: &SimResult| {
            r.energy.energy(Component::LinkAxcL1xMsg).value()
                + r.energy.energy(Component::LinkAxcL1xData).value()
                + r.energy.energy(Component::LinkL0xFwd).value()
        };
        let dc = 100.0 * (1.0 - cache(&run.fusion_dx) / cache(&run.fusion).max(1e-9));
        let dl = 100.0 * (1.0 - link(&run.fusion_dx) / link(&run.fusion).max(1e-9));
        writeln!(
            out,
            "{:<8} {:>10} {:>10.1} {:>10.1}",
            run.id.label(),
            fwd,
            dc,
            dl
        )
        .unwrap();
    }
    out
}

/// Figure 7: LARGE vs SMALL accelerator caches.
pub fn render_fig7(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 7: LARGE (8KB L0X / 256KB L1X) vs SMALL, FUSION\n\
         {:<8} {:>12} {:>12}",
        "bench", "energy L/S", "cycles L/S"
    )
    .unwrap();
    for run in runs {
        writeln!(
            out,
            "{:<8} {:>12.3} {:>12.3}",
            run.id.label(),
            run.fusion_large.memory_energy().value() / run.fusion.memory_energy().value().max(1e-9),
            run.fusion_large.total_cycles as f64 / run.fusion.total_cycles.max(1) as f64,
        )
        .unwrap();
    }
    out
}

/// Table 6: virtual-memory lookup counts.
pub fn render_table6(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 6: Virtual memory table look up count (FUSION)\n{:<8} {:>10} {:>10} {:>10}",
        "bench", "AX-TLB", "AX-RMAP", "fwd reqs"
    )
    .unwrap();
    for run in runs {
        writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10}",
            run.id.label(),
            run.fusion.ax_tlb_lookups,
            run.fusion.ax_rmap_lookups,
            run.fusion.host_forwards
        )
        .unwrap();
    }
    out
}

/// Machine-readable export of the Figure 6 data (one row per
/// suite x system), for plotting.
pub fn render_csv(runs: &[SuiteRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "bench,system,cycles,dma_fraction,cache_energy_pj,axc_pj,l1x_pj,l2_pj,link_axc_l1x_pj,link_l1x_l2_pj,dma_blocks,l0_hit_rate,wset_kb"
    )
    .unwrap();
    for run in runs {
        for (label, res) in [
            ("SCRATCH", &run.scratch),
            ("SHARED", &run.shared),
            ("FUSION", &run.fusion),
            ("FUSION-Dx", &run.fusion_dx),
        ] {
            let e = &res.energy;
            let l0_hit = res
                .tile
                .map(|t| t.l0_hits as f64 / t.l0_accesses.max(1) as f64)
                .unwrap_or(0.0);
            writeln!(
                out,
                "{},{},{},{:.4},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{:.4},{:.1}",
                run.id.label(),
                label,
                res.total_cycles,
                res.dma_time_fraction(),
                res.cache_energy().value(),
                e.energy(Component::AxcCache).value(),
                e.energy(Component::L1x).value(),
                e.energy(Component::L2).value(),
                (e.energy(Component::LinkAxcL1xMsg) + e.energy(Component::LinkAxcL1xData)).value(),
                (e.energy(Component::LinkL1xL2Msg) + e.energy(Component::LinkL1xL2Data)).value(),
                res.dma_blocks,
                l0_hit,
                run.workload.working_set().kib(),
            )
            .unwrap();
        }
    }
    out
}

/// Oracle-DMA window statistics for one suite (supports Figure 6d and the
/// DMA sections of DESIGN.md).
pub fn dma_window_summary(wl: &Workload, scratch_blocks: usize) -> (usize, usize) {
    let mut windows = 0;
    let mut blocks = 0;
    for p in wl.phases.iter().filter(|p| !p.unit.is_host()) {
        for w in dma_windows(p, scratch_blocks) {
            windows += 1;
            blocks += w.blocks_moved();
        }
    }
    (windows, blocks)
}

/// Number of forwardable producer→consumer pairs in a workload (used by
/// the Table 5 bench).
pub fn forwardable_pairs(wl: &Workload) -> usize {
    forward_pairs(wl).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_workloads::build_suite;

    fn tiny_run() -> SuiteRun {
        SuiteRun::simulate(SuiteId::Adpcm, Scale::Tiny)
    }

    #[test]
    fn all_renderers_produce_rows() {
        let runs = vec![tiny_run()];
        for text in [
            render_table1(&runs),
            render_table2(),
            render_table3(&runs),
            render_fig6a(&runs),
            render_fig6b(&runs),
            render_fig6c(&runs),
            render_fig6d(&runs),
            render_table4(&runs),
            render_table5(&runs),
            render_fig7(&runs),
            render_table6(&runs),
        ] {
            assert!(
                text.lines().count() >= 2,
                "renderer produced no rows: {text}"
            );
        }
    }

    #[test]
    fn csv_is_rectangular() {
        let runs = vec![tiny_run()];
        let csv = render_csv(&runs);
        let mut lines = csv.lines();
        let cols = lines.next().unwrap().split(',').count();
        assert_eq!(cols, 13);
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
            rows += 1;
        }
        assert_eq!(rows, 4, "one row per system");
    }

    #[test]
    fn fig6a_normalizes_scratch_to_one() {
        let runs = vec![tiny_run()];
        let text = render_fig6a(&runs);
        let sc_line = text.lines().find(|l| l.contains(" SC ")).unwrap();
        let norm: f64 = sc_line.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dirty_fraction_bounds() {
        let wl = build_suite(SuiteId::Filter, Scale::Tiny);
        let f = dirty_block_fraction(&wl);
        assert!((0.0..=100.0).contains(&f));
        assert!(f > 10.0, "filter writes whole planes: {f:.0}%");
    }

    #[test]
    fn dma_window_summary_counts() {
        let wl = build_suite(SuiteId::Fft, Scale::Tiny);
        let (windows, blocks) = dma_window_summary(&wl, 64);
        assert!(windows > 0);
        assert!(blocks > 0);
    }
}
