//! Command-line simulator driver.
//!
//! ```text
//! sim run    --system <sc|sh|fu|fu-dx> --suite <fft|disp|track|adpcm|susan|filt|hist>
//!            [--scale tiny|small|paper] [--large] [--write-through]
//!            [--lease-renewal] [--prefetch <N>] [--json]
//! sim trace  --suite <...> [--scale ...] --out <file>
//! sim replay --system <...> --trace <file> [--json] [...]
//! sim compare --suite <...> [--scale ...] [config flags]
//! ```
//!
//! `trace` materializes a workload into a compact binary file (the paper's
//! trace-driven workflow); `replay` runs any architecture over it without
//! rebuilding the kernels.

use std::fmt::Write as _;
use std::process::ExitCode;

use fusion_accel::{io as trace_io, Workload};
use fusion_core::{run_system, SimResult, SystemKind};
use fusion_energy::Component;
use fusion_types::{SystemConfig, WritePolicy};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sim run --system <sc|sh|fu|fu-dx> --suite <fft|disp|track|adpcm|susan|filt|hist>\n          [--scale tiny|small|paper] [--large] [--write-through] [--lease-renewal] [--json]\n  sim trace --suite <...> [--scale ...] --out <file>\n  sim replay --system <...> --trace <file> [--json] [--large] [--write-through] [--lease-renewal]"
    );
    ExitCode::FAILURE
}

struct Args {
    values: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Option<Args> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].strip_prefix("--")?.to_owned();
            let flag = matches!(
                key.as_str(),
                "json" | "large" | "write-through" | "lease-renewal"
            );
            // "--prefetch <N>" takes a value; flags above do not.
            if flag {
                values.push((key, "true".into()));
                i += 1;
            } else {
                let value = args.get(i + 1)?.clone();
                values.push((key, value));
                i += 2;
            }
        }
        Some(Args { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s {
        "sc" | "scratch" => Some(SystemKind::Scratch),
        "sh" | "shared" => Some(SystemKind::Shared),
        "fu" | "fusion" => Some(SystemKind::Fusion),
        "fu-dx" | "fusion-dx" | "dx" => Some(SystemKind::FusionDx),
        _ => None,
    }
}

fn parse_suite(s: &str) -> Option<SuiteId> {
    match s {
        "fft" => Some(SuiteId::Fft),
        "disp" | "disparity" => Some(SuiteId::Disparity),
        "track" | "tracking" => Some(SuiteId::Tracking),
        "adpcm" => Some(SuiteId::Adpcm),
        "susan" => Some(SuiteId::Susan),
        "filt" | "filter" => Some(SuiteId::Filter),
        "hist" | "histogram" => Some(SuiteId::Histogram),
        _ => None,
    }
}

fn parse_scale(s: Option<&str>) -> Option<Scale> {
    match s {
        None | Some("paper") => Some(Scale::Paper),
        Some("tiny") => Some(Scale::Tiny),
        Some("small") => Some(Scale::Small),
        _ => None,
    }
}

fn config_from(args: &Args) -> SystemConfig {
    let mut cfg = if args.flag("large") {
        SystemConfig::large()
    } else {
        SystemConfig::small()
    };
    if args.flag("write-through") {
        cfg.write_policy = WritePolicy::WriteThrough;
    }
    cfg.lease_renewal = args.flag("lease-renewal");
    cfg.l1x_prefetch_degree = match args.get("prefetch") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: --prefetch expects a number, got '{v}'; using 0");
                0
            }
        },
        None => 0,
    };
    cfg
}

/// Minimal JSON emitter for the result (no external JSON dependency).
fn result_to_json(res: &SimResult) -> String {
    let mut s = String::new();
    let t = res.traffic();
    write!(
        s,
        "{{\"system\":\"{}\",\"workload\":\"{}\",\"total_cycles\":{},\"dma_cycles\":{},\
         \"cache_energy_pj\":{:.3},\"memory_energy_pj\":{:.3},\
         \"ax_tlb_lookups\":{},\"ax_rmap_lookups\":{},\"host_forwards\":{},\
         \"dma_blocks\":{},\"dma_transfers\":{},\"l2_accesses\":{},",
        res.system,
        res.workload,
        res.total_cycles,
        res.dma_cycles,
        res.cache_energy().value(),
        res.memory_energy().value(),
        res.ax_tlb_lookups,
        res.ax_rmap_lookups,
        res.host_forwards,
        res.dma_blocks,
        res.dma_transfers,
        res.l2_accesses,
    )
    .unwrap();
    write!(
        s,
        "\"traffic\":{{\"msgs_axc_l1x\":{},\"data_axc_l1x\":{},\"msgs_l1x_l2\":{},\
         \"data_l1x_l2\":{},\"fwds_l0x_l0x\":{},\"flits_axc_l1x\":{}}},",
        t.msgs_axc_l1x,
        t.data_axc_l1x,
        t.msgs_l1x_l2,
        t.data_l1x_l2,
        t.fwds_l0x_l0x,
        t.flits_axc_l1x.value(),
    )
    .unwrap();
    s.push_str("\"energy\":{");
    let mut first = true;
    for (c, e, n) in res.energy.iter() {
        if !first {
            s.push(',');
        }
        first = false;
        write!(
            s,
            "\"{}\":{{\"pj\":{:.3},\"events\":{}}}",
            c.label(),
            e.value(),
            n
        )
        .unwrap();
    }
    s.push_str("},\"phases\":[");
    for (i, p) in res.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(
            s,
            "{{\"name\":\"{}\",\"is_host\":{},\"cycles\":{},\"dma_cycles\":{},\
             \"memory_pj\":{:.3},\"compute_pj\":{:.3}}}",
            p.name,
            p.is_host,
            p.cycles,
            p.dma_cycles,
            p.memory_energy.value(),
            p.compute_energy.value(),
        )
        .unwrap();
    }
    s.push_str("]}");
    s
}

fn report(res: &SimResult, json: bool) {
    if json {
        println!("{}", result_to_json(res));
        return;
    }
    println!(
        "{} on {}: {} cycles ({:.0}% DMA), cache-hierarchy energy {}",
        res.system,
        res.workload,
        res.total_cycles,
        100.0 * res.dma_time_fraction(),
        res.cache_energy(),
    );
    println!(
        "  L2 accesses {}  AX-TLB {}  AX-RMAP {}  host forwards {}",
        res.l2_accesses, res.ax_tlb_lookups, res.ax_rmap_lookups, res.host_forwards
    );
    if let Some(t) = res.tile {
        println!(
            "  tile: L0 hit {:.1}%  renewals {}  forwards {}  stalls {}",
            100.0 * t.l0_hits as f64 / t.l0_accesses.max(1) as f64,
            t.lease_renewals,
            t.fwd_l0_to_l0,
            t.stall_cycles
        );
    }
    let compute = res.energy.energy(Component::Compute);
    println!("  compute energy {compute}");
    println!(
        "  accelerator load-to-use: mean {:.1} cyc, max {} cyc over {} refs",
        res.latency.mean(),
        res.latency.max(),
        res.latency.count()
    );
}

fn run(system: SystemKind, wl: &Workload, args: &Args) {
    let cfg = config_from(args);
    let res = run_system(system, wl, &cfg);
    report(&res, args.flag("json"));
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = Args::parse(rest) else {
        return usage();
    };
    match cmd.as_str() {
        "run" => {
            let (Some(system), Some(suite)) = (
                args.get("system").and_then(parse_system),
                args.get("suite").and_then(parse_suite),
            ) else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            let wl = build_suite(suite, scale);
            run(system, &wl, &args);
        }
        "trace" => {
            let (Some(suite), Some(out)) =
                (args.get("suite").and_then(parse_suite), args.get("out"))
            else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            let wl = build_suite(suite, scale);
            let file = match std::fs::File::create(out) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {out}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = trace_io::write_workload(&wl, file) {
                eprintln!("trace write failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} phases, {} refs)",
                out,
                wl.phases.len(),
                wl.total_refs()
            );
        }
        "compare" => {
            let Some(suite) = args.get("suite").and_then(parse_suite) else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            let wl = build_suite(suite, scale);
            let cfg = config_from(&args);
            println!(
                "{:<10} {:>12} {:>8} {:>14} {:>10} {:>10}",
                "system", "cycles", "dma%", "cache energy", "L2 acc", "LtU mean"
            );
            for kind in [
                SystemKind::Scratch,
                SystemKind::Shared,
                SystemKind::Fusion,
                SystemKind::FusionDx,
            ] {
                let res = run_system(kind, &wl, &cfg);
                println!(
                    "{:<10} {:>12} {:>8.2} {:>14} {:>10} {:>10.1}",
                    res.system,
                    res.total_cycles,
                    res.dma_time_fraction(),
                    res.cache_energy().to_string(),
                    res.l2_accesses,
                    res.latency.mean(),
                );
            }
        }
        "replay" => {
            let (Some(system), Some(path)) =
                (args.get("system").and_then(parse_system), args.get("trace"))
            else {
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wl = match trace_io::read_workload(file) {
                Ok(wl) => wl,
                Err(e) => {
                    eprintln!("trace read failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run(system, &wl, &args);
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
