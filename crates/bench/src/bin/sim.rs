//! Command-line simulator driver.
//!
//! ```text
//! sim run     --system <sc|sh|fu|fu-dx> --suite <fft|disp|track|adpcm|susan|filt|hist>
//!             [--scale tiny|small|paper] [--large] [--write-through]
//!             [--lease-renewal] [--prefetch <N>] [--json]
//! sim trace   --suite <...> [--scale ...] --out <file>
//! sim replay  --system <...> --trace <file> [--json] [config flags]
//! sim compare --suite <...> [--scale ...] [--threads <N>] [robustness flags] [config flags]
//! sim sweep   [--scale ...] [--threads <N>] [--tile-threads <N>] [--json]
//!             [robustness flags] [config flags]
//! sim verify  [--protocol acc|acc-dx|acc-renew|mesi|all] [--agents <N>] [--blocks <N>]
//!             [--horizon <N>] [--fault <kind>@<event>] [--expect-violation]
//!             [--max-states <N>] [--json]
//! ```
//!
//! `trace` materializes a workload into a compact binary file (the paper's
//! trace-driven workflow); `replay` runs any architecture over it without
//! rebuilding the kernels. `compare` runs all four systems on one suite
//! and `sweep` runs the full 4-system × 7-suite evaluation grid — both
//! over the shared-trace worker pool of [`fusion_core::sweep`].
//!
//! Exit codes follow the usual convention: 0 on success, 1 when a
//! simulation or sweep job fails at runtime (completed rows are still
//! printed, failures are summarized per job on stderr), 2 for usage
//! errors. The robustness flags — `--retries <N>`, `--fail-fast`,
//! `--budget <cycles>`, `--deadline-ms <N>` and `--inject <seed:count>` —
//! map onto the fault-tolerant sweep engine of DESIGN.md §10.
//!
//! `verify` runs the exhaustive protocol model checker of DESIGN.md §11
//! over the pure transition functions the simulator itself executes. It
//! exits 0 when the outcome matches expectation — clean by default, or a
//! counterexample found when `--expect-violation` is given — and 1
//! otherwise (including an exploration truncated by `--max-states`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fusion_accel::{io as trace_io, Workload};
use fusion_core::{
    design_grid, journal, run_system, FaultPlan, SimResult, Sweep, SweepJob, SweepOutcome,
    SweepSummary, SystemKind, TraceCache, Watchdog,
};
use fusion_energy::Component;
use fusion_types::{SystemConfig, WritePolicy};
use fusion_verify::{fault_matches_protocol, parse_fault, VerifyProtocol, VerifySpec};
use fusion_workloads::{build_suite, Scale, SuiteId};

const USAGE: &str = "usage:\n  \
sim run     --system <sc|sh|fu|fu-dx> --suite <fft|disp|track|adpcm|susan|filt|hist>\n              \
[--scale tiny|small|paper] [--large] [--write-through] [--lease-renewal]\n              \
[--prefetch <N>] [--json]\n  \
sim trace   --suite <...> [--scale ...] --out <file>\n  \
sim replay  --system <...> --trace <file> [--json] [--large] [--write-through]\n              \
[--lease-renewal] [--prefetch <N>]\n  \
sim compare --suite <...> [--scale ...] [--threads <N>] [robustness flags] [config flags]\n  \
sim sweep   [--scale ...] [--threads <N>] [--tile-threads <N>] [--json] [--no-memo]\n              \
[--journal <path>] [--resume] [robustness flags] [config flags]\n  \
sim verify  [--protocol <acc|acc-dx|acc-renew|mesi|all>] [--agents <N>] [--blocks <N>]\n              \
[--horizon <N>] [--fault <kind>@<event>] [--expect-violation]\n              \
[--max-states <N>] [--json]\n  \
sim lint    [--json] [--rule <id>]\n\n\
lint rules: cast-truncate, lock-order, nondet-iter, std-map, unwrap, wall-clock\n  \
(token-accurate determinism/robustness invariants over crates/*/src; DESIGN.md \u{a7}15)\n\n\
verify fault kinds: lease-overrun, gtime-regression (ACC);\n  \
empty-sharers, wrong-owner (MESI)\n\n\
robustness flags (compare/sweep):\n  \
--tile-threads <N>    per-job tile-worker reservation (sweep; echoed in JSON rows)\n  \
--retries <N>         retry panicked/timed-out jobs up to N extra times\n  \
--fail-fast           stop claiming new jobs after the first permanent failure\n  \
--budget <cycles>     per-job simulated-cycle budget (livelock watchdog)\n  \
--deadline-ms <N>     per-job wall-clock deadline in milliseconds\n  \
--inject <seed:count> deterministically inject <count> faults (testing)\n\n\
durability flags (sweep):\n  \
--journal <path>      write-ahead result journal: one fsync'd sealed JSONL row\n                        \
per completed grid point (DESIGN.md \u{a7}14)\n  \
--resume              replay a journal, re-verifying and skipping completed\n                        \
points; partial sweeps also leave <path>.salvage.json\n\n\
exit codes: 0 success, 1 runtime/sweep/verification failure, 2 usage error";

/// Usage errors exit 2, distinguishing bad invocations from jobs that
/// failed at runtime (exit 1).
const EXIT_USAGE: u8 = 2;
const EXIT_RUNTIME: u8 = 1;

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

/// Prints the specific problem, then the usage text.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    usage()
}

/// Options that stand alone (no value follows).
const FLAG_KEYS: [&str; 8] = [
    "json",
    "large",
    "write-through",
    "lease-renewal",
    "fail-fast",
    "no-memo",
    "resume",
    "expect-violation",
];
/// Options that consume the next argument as their value.
const VALUE_KEYS: [&str; 20] = [
    "rule",
    "system",
    "suite",
    "scale",
    "out",
    "trace",
    "prefetch",
    "threads",
    "tile-threads",
    "retries",
    "budget",
    "deadline-ms",
    "inject",
    "journal",
    "protocol",
    "agents",
    "blocks",
    "horizon",
    "fault",
    "max-states",
];

#[derive(Debug)]
struct Args {
    values: Vec<(String, String)>,
}

impl Args {
    /// Parses `--flag` / `--key value` pairs, rejecting unknown keys,
    /// bare (non `--`) tokens and valued options missing their value.
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                return Err(format!("unexpected argument '{}'", args[i]));
            };
            if FLAG_KEYS.contains(&key) {
                values.push((key.to_owned(), "true".into()));
                i += 1;
            } else if VALUE_KEYS.contains(&key) {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("--{key} requires a value"));
                };
                values.push((key.to_owned(), value.clone()));
                i += 2;
            } else {
                return Err(format!("unknown option '--{key}'"));
            }
        }
        Ok(Args { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Parses an optional numeric option, failing loudly on garbage so
    /// sweep scripts never run with silently-downgraded settings.
    fn numeric(&self, key: &str) -> Result<Option<usize>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects a non-negative integer, got '{v}'")),
        }
    }

    /// Parses `--inject seed:count` into a fault plan over `jobs` slots.
    fn fault_plan(&self, jobs: usize) -> Result<Option<FaultPlan>, String> {
        let Some(spec) = self.get("inject") else {
            return Ok(None);
        };
        let err = || format!("--inject expects '<seed>:<count>', got '{spec}'");
        let (seed, count) = spec.split_once(':').ok_or_else(err)?;
        let seed: u64 = seed.parse().map_err(|_| err())?;
        let count: usize = count.parse().map_err(|_| err())?;
        Ok(Some(FaultPlan::seeded(seed, jobs, count)))
    }
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s {
        "sc" | "scratch" => Some(SystemKind::Scratch),
        "sh" | "shared" => Some(SystemKind::Shared),
        "fu" | "fusion" => Some(SystemKind::Fusion),
        "fu-dx" | "fusion-dx" | "dx" => Some(SystemKind::FusionDx),
        _ => None,
    }
}

fn parse_suite(s: &str) -> Option<SuiteId> {
    match s {
        "fft" => Some(SuiteId::Fft),
        "disp" | "disparity" => Some(SuiteId::Disparity),
        "track" | "tracking" => Some(SuiteId::Tracking),
        "adpcm" => Some(SuiteId::Adpcm),
        "susan" => Some(SuiteId::Susan),
        "filt" | "filter" => Some(SuiteId::Filter),
        "hist" | "histogram" => Some(SuiteId::Histogram),
        _ => None,
    }
}

fn parse_scale(s: Option<&str>) -> Option<Scale> {
    match s {
        None | Some("paper") => Some(Scale::Paper),
        Some("tiny") => Some(Scale::Tiny),
        Some("small") => Some(Scale::Small),
        _ => None,
    }
}

/// Builds the [`SystemConfig`] from the shared config flags. Invalid
/// numeric values are a hard usage error, not a silent downgrade.
fn config_from(args: &Args) -> Result<SystemConfig, String> {
    let mut cfg = if args.flag("large") {
        SystemConfig::large()
    } else {
        SystemConfig::small()
    };
    if args.flag("write-through") {
        cfg.write_policy = WritePolicy::WriteThrough;
    }
    cfg.lease_renewal = args.flag("lease-renewal");
    cfg.l1x_prefetch_degree = args.numeric("prefetch")?.unwrap_or(0);
    Ok(cfg)
}

/// Applies the shared sweep/robustness flags to a fresh [`Sweep`].
fn sweep_from(scale: Scale, args: &Args, jobs: usize) -> Result<Sweep, String> {
    let mut sweep = Sweep::new(scale);
    if let Some(n) = args.numeric("threads")? {
        sweep = sweep.threads(n);
    }
    if let Some(n) = args.numeric("tile-threads")? {
        sweep = sweep.tile_threads(n);
    }
    if let Some(n) = args.numeric("retries")? {
        sweep = sweep.retries(n as u32);
    }
    sweep = sweep.fail_fast(args.flag("fail-fast"));
    sweep = sweep.memo(!args.flag("no-memo"));
    let watchdog = Watchdog {
        max_sim_cycles: args.numeric("budget")?.map(|n| n as u64),
        wall_deadline_ms: args.numeric("deadline-ms")?.map(|n| n as u64),
    };
    sweep = sweep.watchdog(watchdog);
    if let Some(plan) = args.fault_plan(jobs)? {
        sweep = sweep.with_faults(plan);
    }
    Ok(sweep)
}

/// Summarizes every failed job on stderr and says whether the sweep was
/// clean. `expected` is the grid size before any fail-fast truncation.
fn report_failures(outcomes: &[SweepOutcome], expected: usize) -> bool {
    let summary = SweepSummary::of(outcomes);
    if summary.all_ok() && outcomes.len() == expected {
        return true;
    }
    eprintln!(
        "sweep: {} completed, {} failed, {} retried",
        summary.completed, summary.failed, summary.retried
    );
    for o in outcomes {
        if let Err(e) = &o.result {
            eprintln!(
                "  FAILED {} [{}] after {} attempt(s): {e}",
                o.job.label(),
                e.kind_label(),
                o.attempts
            );
        }
    }
    if outcomes.len() < expected {
        eprintln!(
            "  fail-fast: {} grid point(s) not attempted",
            expected - outcomes.len()
        );
    }
    false
}

/// Minimal JSON string escaping for error messages (the only free-form
/// text that crosses into the `--json` output).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report(res: &SimResult, json: bool) {
    if json {
        // The stats serializer lives on SimResult so the golden-stats
        // test and this driver cannot drift apart.
        println!("{}", res.to_json());
        return;
    }
    println!(
        "{} on {}: {} cycles ({:.0}% DMA), cache-hierarchy energy {}",
        res.system,
        res.workload,
        res.total_cycles,
        100.0 * res.dma_time_fraction(),
        res.cache_energy(),
    );
    println!(
        "  L2 accesses {}  AX-TLB {}  AX-RMAP {}  host forwards {}",
        res.l2_accesses, res.ax_tlb_lookups, res.ax_rmap_lookups, res.host_forwards
    );
    if let Some(t) = res.tile {
        println!(
            "  tile: L0 hit {:.1}%  renewals {}  forwards {}  stalls {}",
            100.0 * t.l0_hits as f64 / t.l0_accesses.max(1) as f64,
            t.lease_renewals,
            t.fwd_l0_to_l0,
            t.stall_cycles
        );
    }
    let compute = res.energy.energy(Component::Compute);
    println!("  compute energy {compute}");
    println!(
        "  accelerator load-to-use: mean {:.1} cyc, max {} cyc over {} refs",
        res.latency.mean(),
        res.latency.max(),
        res.latency.count()
    );
}

fn run(system: SystemKind, wl: &Workload, cfg: &SystemConfig, json: bool) -> ExitCode {
    match run_system(system, wl, cfg) {
        Ok(res) => {
            report(&res, json);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation failed [{}]: {e}", e.kind_label());
            ExitCode::from(EXIT_RUNTIME)
        }
    }
}

/// `compare`: all four systems on one suite, over the sweep pool with a
/// single shared trace, with per-job host timings.
fn compare(suite: SuiteId, scale: Scale, args: &Args) -> Result<bool, String> {
    let cfg = config_from(args)?;
    let jobs: Vec<SweepJob> = [
        SystemKind::Scratch,
        SystemKind::Shared,
        SystemKind::Fusion,
        SystemKind::FusionDx,
    ]
    .into_iter()
    .map(|kind| SweepJob::new(kind, suite, cfg.clone()))
    .collect();
    let expected = jobs.len();
    let sweep = sweep_from(scale, args, expected)?;
    let pool = sweep.pool_size(jobs.len());
    let started = std::time::Instant::now();
    let outcomes = sweep.run(jobs);
    let total = started.elapsed();
    println!(
        "{:<10} {:>12} {:>8} {:>14} {:>10} {:>10} {:>9}",
        "system", "cycles", "dma%", "cache energy", "L2 acc", "LtU mean", "wall ms"
    );
    for o in &outcomes {
        let Ok(res) = &o.result else { continue };
        println!(
            "{:<10} {:>12} {:>8.2} {:>14} {:>10} {:>10.1} {:>9.1}",
            res.system,
            res.total_cycles,
            res.dma_time_fraction(),
            res.cache_energy().to_string(),
            res.l2_accesses,
            res.latency.mean(),
            res.metrics.wall_time().as_secs_f64() * 1e3,
        );
    }
    let busy: u64 = outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok())
        .map(|r| r.metrics.wall_nanos)
        .sum();
    println!(
        "pool: {pool} worker(s), {:.1} ms wall ({:.1} ms of simulation)",
        total.as_secs_f64() * 1e3,
        busy as f64 / 1e6,
    );
    Ok(report_failures(&outcomes, expected))
}

/// One renderable grid point of a sweep: a live outcome from this run or
/// a row spliced verbatim from the write-ahead journal.
enum SweepRow<'a> {
    Live(&'a SweepOutcome),
    Resumed(&'a journal::JournalRow),
}

/// `sweep`: the design grid — the 4-system × 7-suite base plus the
/// L0X- and scratchpad-capacity axes (DESIGN.md §13) — over the pool,
/// optionally journaled with `--journal` and crash-recovered with
/// `--resume` (DESIGN.md §14).
fn sweep_cmd(scale: Scale, args: &Args) -> Result<bool, String> {
    let cfg = config_from(args)?;
    let jobs = design_grid(&cfg);
    let expected = jobs.len();
    let mut sweep = sweep_from(scale, args, expected)?;
    // The CLI shares the sweep's trace cache so resume verification
    // fingerprints the exact workload bytes the jobs will replay.
    let traces = Arc::new(TraceCache::new());
    sweep = sweep.with_trace_cache(Arc::clone(&traces));

    let journal_path = args.get("journal").map(PathBuf::from);
    if args.flag("resume") && journal_path.is_none() {
        return Err("--resume requires --journal <path>".to_string());
    }

    // Resume: decode the journal and re-verify every claim against the
    // live grid (code version, scale, config and trace fingerprints —
    // checked, never assumed). Header mismatches are usage errors;
    // damaged or stale rows simply re-run.
    let mut resumed: Vec<Option<journal::JournalRow>> = jobs.iter().map(|_| None).collect();
    if let (true, Some(path)) = (args.flag("resume"), &journal_path) {
        match std::fs::read(path) {
            Ok(bytes) => {
                let recovery = journal::read_journal(&bytes);
                let mut fp = |suite: SuiteId| traces.get(suite, scale).fingerprint();
                let plan = journal::plan_resume(
                    &jobs,
                    scale,
                    &recovery,
                    &journal::code_version(),
                    &mut fp,
                )
                .map_err(|e| format!("--resume: {e}"))?;
                for w in &plan.warnings {
                    eprintln!("journal: {w}");
                }
                resumed = plan.resumed;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!(
                    "journal: {} not found; running the full grid",
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("journal: cannot read {}: {e}", path.display());
                return Ok(false);
            }
        }
    }
    let resumed_count = resumed.iter().flatten().count();

    // (Re)create the journal and replay the verified rows into it before
    // the sweep starts: resume *compacts*, so torn tails, duplicates and
    // stale rows are healed rather than appended after.
    if let Some(path) = &journal_path {
        let header = journal::JournalHeader {
            scale: journal::scale_label(scale).to_string(),
            code_version: journal::code_version(),
            grid: expected,
        };
        let mut writer = match journal::JournalWriter::create(path, &header) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("journal: {e}");
                return Ok(false);
            }
        };
        for row in resumed.iter().flatten() {
            if let Err(e) = writer.append(row) {
                eprintln!("journal: {e}");
                return Ok(false);
            }
        }
        sweep = sweep.with_journal(Arc::new(journal::JournalSink::new(writer)));
    }

    let todo: Vec<SweepJob> = jobs
        .iter()
        .zip(&resumed)
        .filter(|(_, r)| r.is_none())
        .map(|(j, _)| j.clone())
        .collect();
    let todo_len = todo.len();
    let pool = sweep.pool_size(todo_len);
    let tile_threads = sweep.tile_threads_per_job();
    let started = std::time::Instant::now();
    let outcomes = sweep.run(todo);
    let total = started.elapsed();
    let memo_stats = sweep.memo_stats();
    let degraded = sweep.degradation();

    // Stitch the live outcomes back into grid order alongside the
    // resumed rows. Outcomes may have gaps (fail-fast, killed workers),
    // so walk them with a cursor keyed on the unique
    // (suite, system, variant) triple.
    let mut rows: Vec<SweepRow> = Vec::with_capacity(expected);
    let mut live = outcomes.iter().peekable();
    for (job, res) in jobs.iter().zip(&resumed) {
        match res {
            Some(row) => rows.push(SweepRow::Resumed(row)),
            None => {
                if let Some(&o) = live.peek() {
                    if o.job.system == job.system
                        && o.job.suite == job.suite
                        && o.job.variant == job.variant
                    {
                        rows.push(SweepRow::Live(o));
                        live.next();
                    }
                }
            }
        }
    }

    if args.flag("json") {
        // One JSON object per grid point; for completed jobs the "result"
        // payload is exactly what `sim run --json` prints for the same
        // (system, suite, config) — resumed rows echo the journaled
        // payload verbatim, so a resumed sweep is byte-identical modulo
        // the timing fields ("wall_ms", "queue_delay_ms", "refs_per_sec")
        // and "memo", which reads "journal". "config" names the capacity
        // variant ("base" on the base grid), "attempts"/"backoff" the
        // retry accounting of DESIGN.md §10.
        println!("[");
        for (i, row) in rows.iter().enumerate() {
            let tail = if i + 1 < rows.len() { "," } else { "" };
            match row {
                SweepRow::Live(o) => match &o.result {
                    Ok(res) => {
                        let m = res.metrics;
                        println!(
                            "{{\"suite\":\"{}\",\"system\":\"{}\",\"config\":\"{}\",\
                             \"tile_threads\":{tile_threads},\
                             \"wall_ms\":{:.3},\
                             \"queue_delay_ms\":{:.3},\"sim_events\":{},\"refs\":{},\
                             \"refs_per_sec\":{:.0},\"memo\":\"{}\",\
                             \"attempts\":{},\"backoff\":{},\"result\":{}}}{tail}",
                            o.job.suite.label(),
                            o.job.system.label(),
                            o.job.variant,
                            m.wall_time().as_secs_f64() * 1e3,
                            m.queue_delay().as_secs_f64() * 1e3,
                            m.sim_events,
                            m.refs_simulated,
                            m.refs_per_sec(),
                            o.memo.mark.label(),
                            o.attempts,
                            o.backoff,
                            res.to_json(),
                        );
                    }
                    Err(e) => {
                        println!(
                            "{{\"suite\":\"{}\",\"system\":\"{}\",\"config\":\"{}\",\
                             \"attempts\":{},\"backoff\":{},\
                             \"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}{tail}",
                            o.job.suite.label(),
                            o.job.system.label(),
                            o.job.variant,
                            o.attempts,
                            o.backoff,
                            e.kind_label(),
                            json_escape(&e.to_string()),
                        );
                    }
                },
                SweepRow::Resumed(r) => {
                    println!(
                        "{{\"suite\":\"{}\",\"system\":\"{}\",\"config\":\"{}\",\
                         \"tile_threads\":{tile_threads},\
                         \"wall_ms\":0.000,\
                         \"queue_delay_ms\":0.000,\"sim_events\":{},\"refs\":{},\
                         \"refs_per_sec\":0,\"memo\":\"journal\",\
                         \"attempts\":{},\"backoff\":{},\"result\":{}}}{tail}",
                        r.suite,
                        r.system,
                        r.variant,
                        r.sim_events,
                        r.refs,
                        r.attempts,
                        r.backoff,
                        r.result_json,
                    );
                }
            }
        }
        println!("]");
        return sweep_epilogue(
            &outcomes,
            todo_len,
            resumed_count,
            expected,
            &degraded,
            journal_path.as_deref(),
        );
    }
    println!(
        "{:<12} {:<10} {:<8} {:>12} {:>14} {:>12} {:>9} {:>9}",
        "suite", "system", "config", "cycles", "cache energy", "events", "wall ms", "queue ms"
    );
    for row in &rows {
        match row {
            SweepRow::Live(o) => {
                let Ok(res) = &o.result else { continue };
                let m = res.metrics;
                println!(
                    "{:<12} {:<10} {:<8} {:>12} {:>14} {:>12} {:>9.1} {:>9.1}",
                    o.job.suite.label(),
                    o.job.system.label(),
                    o.job.variant,
                    res.total_cycles,
                    res.cache_energy().to_string(),
                    m.sim_events,
                    m.wall_time().as_secs_f64() * 1e3,
                    m.queue_delay().as_secs_f64() * 1e3,
                );
            }
            SweepRow::Resumed(r) => {
                println!(
                    "{:<12} {:<10} {:<8} {:>12} {:>14} {:>12} {:>9} {:>9}",
                    r.suite,
                    r.system,
                    r.variant,
                    journal::result_u64(&r.result_json, "total_cycles").unwrap_or(0),
                    "(journal)",
                    r.sim_events,
                    "-",
                    "-",
                );
            }
        }
    }
    let done: Vec<&SimResult> = outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok())
        .collect();
    let busy: u64 = done.iter().map(|r| r.metrics.wall_nanos).sum();
    let refs: u64 = done.iter().map(|r| r.metrics.refs_simulated).sum();
    println!(
        "{} jobs on {pool} worker(s) x {tile_threads} tile thread(s): \
         {:.1} ms wall, {:.1} ms of simulation ({:.2}x), \
         {:.2} Mrefs/s",
        outcomes.len(),
        total.as_secs_f64() * 1e3,
        busy as f64 / 1e6,
        busy as f64 / total.as_nanos().max(1) as f64,
        refs as f64 * 1e3 / total.as_nanos().max(1) as f64,
    );
    let lookups = memo_stats.hits + memo_stats.misses + memo_stats.digest_fallbacks;
    if lookups > 0 {
        println!(
            "memo: {}/{lookups} hits ({:.0}%), {} digest fallback(s), \
             {} phase(s) spliced / {} replayed",
            memo_stats.hits,
            memo_stats.hit_rate() * 100.0,
            memo_stats.digest_fallbacks,
            memo_stats.phases_spliced,
            memo_stats.phases_replayed,
        );
    }
    sweep_epilogue(
        &outcomes,
        todo_len,
        resumed_count,
        expected,
        &degraded,
        journal_path.as_deref(),
    )
}

/// Shared sweep wrap-up: failure summary, resume accounting, degradation
/// report, and — on a partial sweep — the machine-readable salvage
/// report (stderr plus `<journal>.salvage.json`).
fn sweep_epilogue(
    outcomes: &[SweepOutcome],
    todo_len: usize,
    resumed_count: usize,
    expected: usize,
    degraded: &fusion_types::Degraded,
    journal_path: Option<&std::path::Path>,
) -> Result<bool, String> {
    let ok = report_failures(outcomes, todo_len);
    if resumed_count > 0 {
        eprintln!("journal: {resumed_count}/{expected} grid point(s) resumed, {todo_len} run live");
    }
    if degraded.is_degraded() {
        eprintln!(
            "degraded: reached '{}' after {} transient failure(s){}",
            degraded.level,
            degraded.transient_failures,
            if degraded.journal_lost {
                "; journal lost mid-sweep"
            } else {
                ""
            }
        );
    } else if degraded.journal_lost {
        eprintln!("journal: lost mid-sweep; completed rows before the failure are preserved");
    }
    if !ok {
        let salvage = journal::salvage_json(
            outcomes,
            resumed_count,
            expected,
            degraded,
            journal_path.and_then(|p| p.to_str()),
        );
        eprintln!("salvage: {salvage}");
        if let Some(path) = journal_path {
            let out = format!("{}.salvage.json", path.display());
            if let Err(e) = std::fs::write(&out, format!("{salvage}\n")) {
                eprintln!("salvage: cannot write {out}: {e}");
            }
        }
    }
    Ok(ok)
}

/// Builds the [`VerifySpec`] for `sim verify` from the CLI arguments.
/// Absent options stay `None` so the per-protocol defaults apply. A
/// fault kind that cannot fire in the selected protocol (e.g. a MESI
/// directory fault against `--protocol acc`) is a usage error, not a
/// silently-clean run.
fn verify_spec_from(args: &Args) -> Result<VerifySpec, String> {
    let mut spec = VerifySpec::default();
    if let Some(p) = args.get("protocol") {
        spec.protocol = VerifyProtocol::parse(p).ok_or_else(|| {
            format!("--protocol expects acc|acc-dx|acc-renew|mesi|all, got '{p}'")
        })?;
    }
    spec.agents = args.numeric("agents")?;
    spec.blocks = args.numeric("blocks")?;
    spec.horizon = args.numeric("horizon")?.map(|n| n as u64);
    if let Some(n) = args.numeric("max-states")? {
        spec.max_states = n;
    }
    if let Some(f) = args.get("fault") {
        let fault = parse_fault(f).ok_or_else(|| {
            format!("--fault expects '<kind>@<event>' with kind one of lease-overrun, gtime-regression, empty-sharers, wrong-owner, got '{f}'")
        })?;
        if spec.protocol != VerifyProtocol::All
            && !fault_matches_protocol(fault.kind, spec.protocol)
        {
            return Err(format!(
                "--fault {f} cannot fire in --protocol {}",
                args.get("protocol").unwrap_or("all")
            ));
        }
        spec.fault = Some(fault);
    }
    Ok(spec)
}

/// `verify`: exhaustive model check of the protocol transition
/// functions. Returns `true` when the outcome matches expectation:
/// every explored space closed, and a counterexample was found exactly
/// when `--expect-violation` asked for one.
fn verify_cmd(args: &Args) -> Result<bool, String> {
    let spec = verify_spec_from(args)?;
    let report = fusion_verify::run(&spec);
    if args.flag("json") {
        println!("{}", fusion_verify::render_json(&report));
    } else {
        print!("{}", fusion_verify::render_text(&report));
    }
    let complete = report.protocols.iter().all(|p| p.exploration.complete);
    let ok = if args.flag("expect-violation") {
        report.violated()
    } else {
        complete && !report.violated()
    };
    if !ok {
        if !complete && !report.violated() {
            eprintln!("verify: exploration truncated by --max-states before closing");
        } else if args.flag("expect-violation") {
            eprintln!("verify: expected a counterexample, but every protocol verified clean");
        } else {
            eprintln!("verify: protocol violation found");
        }
    }
    Ok(ok)
}

/// `sim lint [--json] [--rule <id>]`: run the fusion-analyze passes over
/// the enclosing workspace. Exit contract matches the other subcommands:
/// 0 clean, 1 findings (or stale allowlist entries), 2 usage/IO errors —
/// including an unknown `--rule`.
fn lint_cmd(args: &Args) -> Result<bool, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot determine cwd: {e}"))?;
    // The workspace root is the nearest ancestor holding a `crates/`
    // directory, so `sim lint` works from any subdirectory of a checkout.
    let mut root = cwd.as_path();
    let root = loop {
        if root.join("crates").is_dir() {
            break root;
        }
        root = root
            .parent()
            .ok_or_else(|| format!("no workspace root (crates/) above {}", cwd.display()))?;
    };
    let report = fusion_analyze::analyze(root, args.get("rule"))?;
    if args.flag("json") {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(e) => return usage_error(&e),
    };
    match cmd.as_str() {
        "run" => {
            let (Some(system), Some(suite)) = (
                args.get("system").and_then(parse_system),
                args.get("suite").and_then(parse_suite),
            ) else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            let cfg = match config_from(&args) {
                Ok(cfg) => cfg,
                Err(e) => return usage_error(&e),
            };
            let wl = build_suite(suite, scale);
            return run(system, &wl, &cfg, args.flag("json"));
        }
        "trace" => {
            let (Some(suite), Some(out)) =
                (args.get("suite").and_then(parse_suite), args.get("out"))
            else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            let wl = build_suite(suite, scale);
            let file = match std::fs::File::create(out) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {out}: {e}");
                    return ExitCode::from(EXIT_RUNTIME);
                }
            };
            if let Err(e) = trace_io::write_workload(&wl, file) {
                eprintln!("trace write failed: {e}");
                return ExitCode::from(EXIT_RUNTIME);
            }
            eprintln!(
                "wrote {} ({} phases, {} refs)",
                out,
                wl.phases.len(),
                wl.total_refs()
            );
        }
        "compare" => {
            let Some(suite) = args.get("suite").and_then(parse_suite) else {
                return usage();
            };
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            match compare(suite, scale, &args) {
                Err(e) => return usage_error(&e),
                Ok(false) => return ExitCode::from(EXIT_RUNTIME),
                Ok(true) => {}
            }
        }
        "sweep" => {
            let Some(scale) = parse_scale(args.get("scale")) else {
                return usage();
            };
            match sweep_cmd(scale, &args) {
                Err(e) => return usage_error(&e),
                Ok(false) => return ExitCode::from(EXIT_RUNTIME),
                Ok(true) => {}
            }
        }
        "verify" => match verify_cmd(&args) {
            Err(e) => return usage_error(&e),
            Ok(false) => return ExitCode::from(EXIT_RUNTIME),
            Ok(true) => {}
        },
        "lint" => match lint_cmd(&args) {
            Err(e) => return usage_error(&e),
            Ok(false) => return ExitCode::from(EXIT_RUNTIME),
            Ok(true) => {}
        },
        "replay" => {
            let (Some(system), Some(path)) =
                (args.get("system").and_then(parse_system), args.get("trace"))
            else {
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::from(EXIT_RUNTIME);
                }
            };
            let cfg = match config_from(&args) {
                Ok(cfg) => cfg,
                Err(e) => return usage_error(&e),
            };
            let wl = match trace_io::read_workload(file) {
                Ok(wl) => wl,
                Err(e) => {
                    eprintln!("trace read failed [{}]: {e}", e.kind_label());
                    return ExitCode::from(EXIT_RUNTIME);
                }
            };
            return run(system, &wl, &cfg, args.flag("json"));
        }
        other => return usage_error(&format!("unknown subcommand '{other}'")),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_separates_flags_from_valued_options() {
        let args = Args::parse(&argv(&[
            "--system",
            "fu",
            "--json",
            "--prefetch",
            "4",
            "--write-through",
        ]))
        .unwrap();
        assert_eq!(args.get("system"), Some("fu"));
        assert_eq!(args.get("prefetch"), Some("4"));
        assert!(args.flag("json"));
        assert!(args.flag("write-through"));
        assert!(!args.flag("large"));
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bare_tokens() {
        assert!(Args::parse(&argv(&["--bogus", "1"]))
            .unwrap_err()
            .contains("--bogus"));
        assert!(Args::parse(&argv(&["fft"]))
            .unwrap_err()
            .contains("unexpected argument"));
        assert!(Args::parse(&argv(&["--suite"]))
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn invalid_numeric_values_are_hard_errors() {
        let args = Args::parse(&argv(&["--prefetch", "garbage"])).unwrap();
        let err = config_from(&args).unwrap_err();
        assert!(err.contains("--prefetch"), "{err}");
        assert!(err.contains("garbage"), "{err}");
        let args = Args::parse(&argv(&["--threads", "-2"])).unwrap();
        assert!(args.numeric("threads").is_err());
    }

    #[test]
    fn config_flags_round_trip() {
        let args = Args::parse(&argv(&[
            "--large",
            "--write-through",
            "--lease-renewal",
            "--prefetch",
            "2",
        ]))
        .unwrap();
        let cfg = config_from(&args).unwrap();
        assert_eq!(cfg.write_policy, WritePolicy::WriteThrough);
        assert!(cfg.lease_renewal);
        assert_eq!(cfg.l1x_prefetch_degree, 2);
    }

    #[test]
    fn robustness_flags_parse_and_apply() {
        let args = Args::parse(&argv(&[
            "--retries",
            "2",
            "--fail-fast",
            "--budget",
            "100000",
            "--deadline-ms",
            "5000",
        ]))
        .unwrap();
        assert_eq!(args.numeric("retries").unwrap(), Some(2));
        assert_eq!(args.numeric("budget").unwrap(), Some(100_000));
        assert_eq!(args.numeric("deadline-ms").unwrap(), Some(5000));
        assert!(args.flag("fail-fast"));
        let sweep = sweep_from(Scale::Tiny, &args, 28).unwrap();
        assert!(sweep.pool_size(28) >= 1);
    }

    #[test]
    fn inject_spec_parses_and_rejects_garbage() {
        let args = Args::parse(&argv(&["--inject", "7:3"])).unwrap();
        let plan = args.fault_plan(28).unwrap().unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan, FaultPlan::seeded(7, 28, 3));

        for bad in ["7", "x:3", "7:x", ":"] {
            let args = Args::parse(&argv(&["--inject", bad])).unwrap();
            let err = args.fault_plan(28).unwrap_err();
            assert!(err.contains("--inject"), "{err}");
        }
        let args = Args::parse(&argv(&["--json"])).unwrap();
        assert!(args.fault_plan(28).unwrap().is_none());
    }

    #[test]
    fn verify_spec_maps_absent_options_to_defaults() {
        let args = Args::parse(&argv(&[])).unwrap();
        let spec = verify_spec_from(&args).unwrap();
        assert_eq!(spec.protocol, VerifyProtocol::All);
        assert_eq!(spec.agents, None);
        assert_eq!(spec.blocks, None);
        assert_eq!(spec.horizon, None);
        assert!(spec.fault.is_none());

        let args = Args::parse(&argv(&[
            "--protocol",
            "acc-renew",
            "--blocks",
            "1",
            "--horizon",
            "4",
            "--max-states",
            "1000",
        ]))
        .unwrap();
        let spec = verify_spec_from(&args).unwrap();
        assert_eq!(spec.protocol, VerifyProtocol::AccRenew);
        assert_eq!(spec.blocks, Some(1));
        assert_eq!(spec.horizon, Some(4));
        assert_eq!(spec.max_states, 1000);
    }

    #[test]
    fn verify_spec_rejects_bad_protocol_and_mismatched_fault() {
        let args = Args::parse(&argv(&["--protocol", "moesi"])).unwrap();
        assert!(verify_spec_from(&args).unwrap_err().contains("--protocol"));

        let args = Args::parse(&argv(&["--fault", "lease-overrun"])).unwrap();
        assert!(verify_spec_from(&args).unwrap_err().contains("--fault"));

        // A MESI directory fault can never fire in an ACC-only run.
        let args = Args::parse(&argv(&["--protocol", "acc", "--fault", "wrong-owner@0"])).unwrap();
        let err = verify_spec_from(&args).unwrap_err();
        assert!(err.contains("cannot fire"), "{err}");

        // Against `all` the same fault is fine: it applies to the MESI leg.
        let args = Args::parse(&argv(&["--fault", "wrong-owner@0"])).unwrap();
        assert!(verify_spec_from(&args).unwrap().fault.is_some());
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn usage_lists_every_subcommand_and_option() {
        for needle in [
            "run",
            "trace",
            "replay",
            "compare",
            "sweep",
            "verify",
            "--prefetch",
            "--threads",
            "--json",
            "--retries",
            "--fail-fast",
            "--budget",
            "--deadline-ms",
            "--inject",
            "--journal",
            "--resume",
            "--protocol",
            "--agents",
            "--blocks",
            "--horizon",
            "--fault",
            "--no-memo",
            "--expect-violation",
            "--max-states",
            "lint",
            "--rule",
            "exit codes",
        ] {
            assert!(USAGE.contains(needle), "usage text missing '{needle}'");
        }
    }
}
