//! Tile-parallel replay scaling driver.
//!
//! ```text
//! tile_scaling [--scale tiny|small|paper] [--tile-threads <N>] [--repeat <N>]
//! ```
//!
//! Builds one multi-tile FUSION system with every Table 1 suite mapped to
//! its own tile, replays it with the requested number of tile workers,
//! and prints the per-tile stats as a JSON array on **stdout** — nothing
//! else. Timing goes to **stderr**, so CI can assert the determinism
//! contract of DESIGN.md §12 by comparing stdout byte-for-byte across
//! thread counts:
//!
//! ```text
//! tile_scaling --scale tiny --tile-threads 1 > a.json
//! tile_scaling --scale tiny --tile-threads 4 > b.json
//! cmp a.json b.json
//! ```
//!
//! `--repeat` replays the system N times (same workloads, fresh system
//! each pass) and reports per-pass throughput, for scaling measurements;
//! stdout still carries exactly one JSON array (the passes are asserted
//! identical before printing).

use std::process::ExitCode;

use fusion_core::systems::MultiTileSystem;
use fusion_types::SystemConfig;
use fusion_workloads::{all_suites, build_suite, Scale};

const USAGE: &str =
    "usage: tile_scaling [--scale tiny|small|paper] [--tile-threads <N>] [--repeat <N>]";

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut tile_threads = 1usize;
    let mut repeat = 1usize;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&str, String> {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} requires a value", args[i]))
        };
        match args[i].as_str() {
            "--scale" => {
                let v = value(i)?;
                scale = parse_scale(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
                i += 2;
            }
            "--tile-threads" => {
                let v = value(i)?;
                tile_threads = v
                    .parse()
                    .map_err(|_| format!("--tile-threads expects an integer, got '{v}'"))?;
                i += 2;
            }
            "--repeat" => {
                let v = value(i)?;
                repeat = v
                    .parse()
                    .map_err(|_| format!("--repeat expects an integer, got '{v}'"))?;
                i += 2;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let tile_threads = tile_threads.max(1);
    let repeat = repeat.max(1);

    // One tile per Table 1 suite: seven concurrently-resident
    // accelerators sharing one host hierarchy.
    let workloads: Vec<_> = all_suites()
        .into_iter()
        .map(|s| build_suite(s, scale))
        .collect();
    let total_refs: u64 = workloads.iter().map(|w| w.total_refs()).sum();
    let cfg = SystemConfig::small();

    let mut printed: Option<Vec<String>> = None;
    for pass in 1..=repeat {
        let started = std::time::Instant::now();
        let results = MultiTileSystem::new(&cfg).run_parallel(&workloads, tile_threads);
        let wall = started.elapsed();
        eprintln!(
            "pass {pass}/{repeat}: {} tiles x {} refs at {tile_threads} tile thread(s): \
             {:.1} ms, {:.2} Mrefs/s",
            results.len(),
            total_refs,
            wall.as_secs_f64() * 1e3,
            total_refs as f64 * 1e3 / wall.as_nanos().max(1) as f64,
        );
        let jsons: Vec<String> = results.iter().map(|r| r.to_json()).collect();
        match &printed {
            None => printed = Some(jsons),
            Some(first) => {
                if *first != jsons {
                    return Err(format!("pass {pass} diverged from pass 1"));
                }
            }
        }
    }
    let jsons = printed.expect("repeat >= 1 always runs one pass");
    println!("[");
    for (i, j) in jsons.iter().enumerate() {
        let tail = if i + 1 < jsons.len() { "," } else { "" };
        println!("{j}{tail}");
    }
    println!("]");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
