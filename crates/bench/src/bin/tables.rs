//! Regenerates every table and figure of the FUSION (ISCA 2015)
//! evaluation.
//!
//! Usage: `tables [table1|table2|table3|fig6a|fig6b|fig6c|fig6d|table4|
//! table5|fig7|table6|all] [tiny|small|paper] [threads]`
//!
//! The simulations run over the shared-trace worker pool of
//! [`fusion_core::sweep`]; the optional third argument pins the worker
//! count (default: all available cores).

use fusion_bench::*;
use fusion_workloads::{all_suites, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = match args.get(1).map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Paper,
    };
    let threads = match args.get(2).map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => {
            eprintln!("threads must be a non-negative integer, got '{}'", args[2]);
            std::process::exit(2);
        }
    };

    if which == "table2" {
        print!("{}", render_table2());
        return;
    }

    eprintln!("simulating all systems at {scale:?} scale...");
    let runs = SuiteRun::simulate_suites(&all_suites(), scale, threads);
    let sections: [(&str, String); 12] = [
        ("csv", render_csv(&runs)),
        ("table1", render_table1(&runs)),
        ("table2", render_table2()),
        ("table3", render_table3(&runs)),
        ("fig6a", render_fig6a(&runs)),
        ("fig6b", render_fig6b(&runs)),
        ("fig6c", render_fig6c(&runs)),
        ("fig6d", render_fig6d(&runs)),
        ("table4", render_table4(&runs)),
        ("table5", render_table5(&runs)),
        ("fig7", render_fig7(&runs)),
        ("table6", render_table6(&runs)),
    ];
    let mut printed = false;
    for (name, text) in &sections {
        if which == "all" || which == *name {
            println!("{text}");
            printed = true;
        }
    }
    if !printed {
        eprintln!(
            "unknown section '{which}'; expected one of: all {}",
            sections.map(|(n, _)| n).join(" ")
        );
        std::process::exit(2);
    }
}
