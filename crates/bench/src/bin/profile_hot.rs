//! In-process replay-throughput probe: runs each (suite, system) grid
//! point many times and reports the *minimum* wall time per run, which is
//! far less scheduler-noisy than one-shot sweep timings. Used to validate
//! hot-loop optimizations before ratcheting `BENCH_sweep.json`.

use std::time::Instant;

use fusion_accel::DecodedTrace;
use fusion_core::result::duration_nanos_saturating;
use fusion_core::runner::{run_system_decoded, SystemKind};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn main() {
    let arg1 = std::env::args().nth(1);
    if arg1.as_deref() == Some("mix") {
        // Print the host/accelerator reference mix per suite: slow rows
        // whose refs are mostly host-side point at `host_access`, not the
        // tile hot loop.
        for suite in SuiteId::ALL {
            let wl = build_suite(suite, Scale::Small);
            let (mut host, mut axc) = (0u64, 0u64);
            for p in &wl.phases {
                let n = p.refs.len() as u64;
                if p.unit.is_host() {
                    host += n;
                } else {
                    axc += n;
                }
            }
            println!(
                "{suite:?}: {host} host + {axc} axc refs ({:.1}% host)",
                host as f64 * 100.0 / (host + axc) as f64
            );
        }
        return;
    }
    if arg1.as_deref() == Some("memo") {
        // Replay-cost anatomy of the memoized design grid: one sequential
        // pass over `design_grid`, reporting how the phase memo served
        // every job and the per-phase replay (or splice) wall time, so a
        // hot-loop or signature change shows up as a per-phase ns shift
        // rather than a noisy end-to-end number (DESIGN.md §13).
        use fusion_core::sweep::{design_grid, Sweep};
        use fusion_core::MemoMark;
        let sweep = Sweep::new(Scale::Small).threads(1);
        let outcomes = sweep.run(design_grid(&SystemConfig::small()));
        let mut wall_by_mark = [0u64; 3]; // miss, hit, fallback
        let mut phases_by_mark = [0u64; 3];
        println!(
            "{:<22} {:<9} {:>7} {:>10} {:>12}",
            "job", "memo", "phases", "wall us", "ns/phase"
        );
        for o in &outcomes {
            let r = o.result.as_ref().expect("job ok");
            let phases = o.memo.phases_spliced + o.memo.phases_replayed;
            let per_phase = r.metrics.wall_nanos as f64 / phases.max(1) as f64;
            println!(
                "{:<22} {:<9} {:>7} {:>10.1} {:>12.0}",
                o.job.label(),
                o.memo.mark.label(),
                phases,
                r.metrics.wall_nanos as f64 / 1e3,
                per_phase,
            );
            let slot = match o.memo.mark {
                MemoMark::Hit => 1,
                MemoMark::Fallback => 2,
                _ => 0,
            };
            wall_by_mark[slot] += r.metrics.wall_nanos;
            phases_by_mark[slot] += phases;
        }
        let stats = sweep.memo_stats();
        println!(
            "memo: {} hit / {} miss / {} fallback ({:.0}% hit rate)",
            stats.hits,
            stats.misses,
            stats.digest_fallbacks,
            stats.hit_rate() * 100.0
        );
        for (slot, label) in [(0usize, "replayed"), (1, "spliced"), (2, "fallback")] {
            if phases_by_mark[slot] > 0 {
                println!(
                    "{label:>9}: {} phases, {:.0} ns/phase",
                    phases_by_mark[slot],
                    wall_by_mark[slot] as f64 / phases_by_mark[slot] as f64
                );
            }
        }
        return;
    }
    if arg1.as_deref() == Some("sweep2") {
        // Run the real sweep engine twice in one process (shared trace
        // cache): pass 2 isolates engine overhead from one-shot coldness.
        use fusion_core::sweep::{Sweep, SweepJob, TraceCache};
        use std::sync::Arc;
        let traces = Arc::new(TraceCache::new());
        for pass in 1..=2 {
            let jobs: Vec<SweepJob> = SuiteId::ALL
                .into_iter()
                .flat_map(|suite| {
                    [
                        SystemKind::Scratch,
                        SystemKind::Shared,
                        SystemKind::Fusion,
                        SystemKind::FusionDx,
                    ]
                    .map(|k| SweepJob::new(k, suite, SystemConfig::small()))
                })
                .collect();
            let sweep = Sweep::new(Scale::Small)
                .threads(1)
                .with_trace_cache(traces.clone());
            let outcomes = sweep.run(jobs);
            let (mut refs, mut ns) = (0u64, 0u64);
            for o in &outcomes {
                let r = o.result.as_ref().expect("job ok");
                refs += r.metrics.refs_simulated;
                ns += r.metrics.wall_nanos;
            }
            println!(
                "pass {pass}: {:.2} Mrefs/s ({refs} refs, {:.1} ms)",
                refs as f64 * 1000.0 / ns as f64,
                ns as f64 / 1e6
            );
        }
        return;
    }
    let iters: u32 = arg1.and_then(|s| s.parse().ok()).unwrap_or(20);
    let cfg = SystemConfig::small();
    let systems = [
        SystemKind::Scratch,
        SystemKind::Shared,
        SystemKind::Fusion,
        SystemKind::FusionDx,
    ];
    let mut total_refs = 0u64;
    let mut total_best_ns = 0u64;
    for suite in SuiteId::ALL {
        let wl = build_suite(suite, Scale::Small);
        let decoded = DecodedTrace::decode(&wl);
        let refs = decoded.total_refs();
        for kind in systems {
            let mut best = u64::MAX;
            let mut l2 = 0u64;
            for _ in 0..iters {
                let t = Instant::now();
                let res = run_system_decoded(kind, &wl, &decoded, &cfg).expect("run");
                let ns = duration_nanos_saturating(t.elapsed());
                std::hint::black_box(res.total_cycles);
                l2 = res.l2_accesses;
                best = best.min(ns);
            }
            println!(
                "{suite:?}/{kind}: {:.1} Mrefs/s ({:.1} ns/ref, {:.3} L2/ref)",
                refs as f64 * 1000.0 / best as f64,
                best as f64 / refs as f64,
                l2 as f64 / refs as f64
            );
            total_refs += refs;
            total_best_ns += best;
        }
    }
    println!(
        "aggregate(best): {:.2} Mrefs/s",
        total_refs as f64 * 1000.0 / total_best_ns as f64
    );
}
