//! Table 1 regeneration: trace analyses (op mix, sharing degree) over the
//! benchmark suites.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_accel::analysis;
use fusion_workloads::{all_suites, build_suite, Scale};

fn bench(c: &mut Criterion) {
    let workloads: Vec<_> = all_suites()
        .into_iter()
        .map(|id| build_suite(id, Scale::Tiny))
        .collect();
    c.bench_function("table1/op_mix_and_sharing_all_suites", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for wl in &workloads {
                for f in wl.functions() {
                    let m = analysis::op_mix(wl, f);
                    acc += m.ld_pct + analysis::sharing_degree(wl, f);
                }
            }
            std::hint::black_box(acc)
        })
    });
    c.bench_function("table1/trace_generation_adpcm", |b| {
        b.iter(|| std::hint::black_box(build_suite(fusion_workloads::SuiteId::Adpcm, Scale::Tiny)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
