//! Ablation: the ACC lease-renewal extension (DESIGN.md "Extensions").
//!
//! Compares FUSION with and without data-free epoch renewals on a
//! lease-expiry-heavy workload, and reports the simulated effect in the
//! bench output.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Fft, Scale::Tiny);
    let base = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let renewed = run_system(
        SystemKind::Fusion,
        &wl,
        &SystemConfig::small().with_lease_renewal(true),
    )
    .unwrap();
    println!(
        "lease renewal ablation (FFT tiny): {} renewals, data transfers {} -> {}, \
         cache energy {:.0} -> {:.0} pJ",
        renewed.tile.unwrap().lease_renewals,
        base.tile.unwrap().data_l1_to_l0,
        renewed.tile.unwrap().data_l1_to_l0,
        base.cache_energy().value(),
        renewed.cache_energy().value(),
    );
    let mut g = c.benchmark_group("ablation_lease_renewal");
    g.bench_function("fusion_baseline", |b| {
        b.iter(|| std::hint::black_box(run_system(SystemKind::Fusion, &wl, &SystemConfig::small())))
    });
    g.bench_function("fusion_renewal", |b| {
        let cfg = SystemConfig::small().with_lease_renewal(true);
        b.iter(|| std::hint::black_box(run_system(SystemKind::Fusion, &wl, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
