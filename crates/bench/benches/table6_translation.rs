//! Table 6 regeneration: AX-TLB / AX-RMAP lookup counting.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Tracking, Scale::Tiny);
    c.bench_function("table6/fusion_translation_track_tiny", |b| {
        b.iter(|| {
            let res = run_system(SystemKind::Fusion, &wl, &Default::default()).unwrap();
            std::hint::black_box((res.ax_tlb_lookups, res.ax_rmap_lookups))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
