//! Table 5 regeneration: FUSION-Dx write-forwarding identification + run.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_accel::analysis::forward_pairs;
use fusion_core::{run_system, SystemKind};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Fft, Scale::Tiny);
    c.bench_function("table5/forward_pair_identification_fft", |b| {
        b.iter(|| std::hint::black_box(forward_pairs(&wl).len()))
    });
    c.bench_function("table5/fusion_dx_run_fft_tiny", |b| {
        b.iter(|| {
            let res = run_system(SystemKind::FusionDx, &wl, &Default::default()).unwrap();
            std::hint::black_box(res.tile.unwrap().fwd_l0_to_l0)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
