//! Hot-path microbenchmarks: trace decoding vs. the two replay paths.
//!
//! `decode` measures the one-time cost of flattening a workload into the
//! [`fusion_accel::DecodedTrace`] SoA layout; `replay_memref` drives the
//! issue engine straight off materialized `MemRef`s; `replay_indexed`
//! drives the same engine off the decoded arrays the way the sweep does.
//! The two replay numbers bound the per-run win of sharing one decode
//! across a whole sweep grid.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_accel::{run_phase, run_phase_indexed, DecodedTrace};
use fusion_types::Cycle;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let workload = build_suite(SuiteId::Fft, Scale::Tiny);
    let decoded = DecodedTrace::decode(&workload);

    let mut g = c.benchmark_group("hot_loop");
    g.bench_function("decode/fft_tiny", |b| {
        b.iter(|| std::hint::black_box(DecodedTrace::decode(&workload).total_refs()))
    });
    g.bench_function("replay_memref/fft_tiny", |b| {
        b.iter(|| {
            let mut cycles = 0u64;
            for phase in &workload.phases {
                let t = run_phase(&phase.refs, phase.mlp.max(1), Cycle::ZERO, |r, now| {
                    // Flat 4-cycle memory plus a touch of the decoded
                    // fields so both paths read the same data per ref.
                    now + 4 + (r.kind.is_write() as u64)
                });
                cycles += t.cycles();
            }
            std::hint::black_box(cycles)
        })
    });
    g.bench_function("replay_indexed/fft_tiny", |b| {
        b.iter(|| {
            let mut cycles = 0u64;
            for idx in 0..decoded.phase_count() {
                let dp = decoded.phase(idx);
                let mlp = workload.phases[idx].mlp.max(1);
                let t = run_phase_indexed(
                    dp.len(),
                    |i| dp.gaps[i],
                    mlp,
                    Cycle::ZERO,
                    |i, now| {
                        // Same memory model; exercise the set-index hints
                        // the sweep's cache lookups consume.
                        std::hint::black_box(dp.set_hints[i] & 0x7f);
                        now + 4 + (dp.kinds[i].is_write() as u64)
                    },
                );
                cycles += t.cycles();
            }
            std::hint::black_box(cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
