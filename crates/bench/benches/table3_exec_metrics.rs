//! Table 3 regeneration: per-function FUSION execution metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    c.bench_function("table3/fusion_run_adpcm_tiny", |b| {
        b.iter(|| {
            let res = run_system(SystemKind::Fusion, &wl, &Default::default()).unwrap();
            std::hint::black_box(res.function_totals("coder"))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
