//! Table 4 regeneration: write-through vs write-back L0X bandwidth.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_types::{SystemConfig, WritePolicy};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let mut g = c.benchmark_group("table4");
    g.bench_function("writeback", |b| {
        b.iter(|| {
            let res = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
            std::hint::black_box(res.traffic().flits_axc_l1x)
        })
    });
    g.bench_function("write_through", |b| {
        let cfg = SystemConfig::small().with_write_policy(WritePolicy::WriteThrough);
        b.iter(|| {
            let res = run_system(SystemKind::Fusion, &wl, &cfg).unwrap();
            std::hint::black_box(res.traffic().flits_axc_l1x)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
