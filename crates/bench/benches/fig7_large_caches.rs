//! Figure 7 regeneration: LARGE vs SMALL accelerator cache configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Susan, Scale::Tiny);
    let mut g = c.benchmark_group("fig7");
    g.bench_function("small", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_system(SystemKind::Fusion, &wl, &SystemConfig::small())
                    .unwrap()
                    .cache_energy(),
            )
        })
    });
    g.bench_function("large", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_system(SystemKind::Fusion, &wl, &SystemConfig::large())
                    .unwrap()
                    .cache_energy(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
