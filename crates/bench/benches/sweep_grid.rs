//! Sweep-pool benchmarks: the full 4-system × 7-suite grid through
//! [`fusion_core::sweep`], sequential vs. parallel, plus the shared
//! trace cache on its own.
//!
//! The parallel/sequential pair is the headline number for the sweep
//! subsystem — on a multi-core host the pooled grid should finish a
//! multiple faster than one worker.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{full_grid, Sweep, TraceCache};
use fusion_types::SystemConfig;
use fusion_workloads::{Scale, SuiteId};

fn bench(c: &mut Criterion) {
    // Warm a shared cache once so every measured run replays identical
    // traces instead of timing kernel materialization.
    let traces = Arc::new(TraceCache::new());
    for job in full_grid(&SystemConfig::small()) {
        traces.get(job.suite, Scale::Tiny);
    }

    let mut g = c.benchmark_group("sweep_grid");
    g.bench_function("grid_tiny/sequential", |b| {
        let sweep = Sweep::new(Scale::Tiny)
            .threads(1)
            .with_trace_cache(Arc::clone(&traces));
        b.iter(|| std::hint::black_box(sweep.run(full_grid(&SystemConfig::small())).len()))
    });
    g.bench_function("grid_tiny/parallel", |b| {
        let sweep = Sweep::new(Scale::Tiny).with_trace_cache(Arc::clone(&traces));
        b.iter(|| std::hint::black_box(sweep.run(full_grid(&SystemConfig::small())).len()))
    });
    g.bench_function("trace_cache/hit", |b| {
        b.iter(|| std::hint::black_box(traces.get(SuiteId::Fft, Scale::Tiny).decoded.total_refs()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
