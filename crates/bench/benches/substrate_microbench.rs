//! Microbenchmarks of the simulator substrates: cache lookups, MESI
//! directory requests, ACC tile accesses, TLB translations and the event
//! queue.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_coherence::acc::{AccAccess, AccTile, TileTiming};
use fusion_coherence::{AgentId, DirectoryMesi, MesiReq};
use fusion_mem::{ReplacementPolicy, SetAssocCache};
use fusion_sim::EventQueue;
use fusion_types::{
    AccessKind, AxcId, BlockAddr, CacheGeometry, Cycle, PhysAddr, Pid, SystemConfig, VirtAddr,
    WritePolicy,
};
use fusion_vm::{PageTable, Tlb};

fn bench(c: &mut Criterion) {
    c.bench_function("substrate/cache_lookup_hit", |b| {
        let geom = CacheGeometry {
            capacity_bytes: 65536,
            ways: 8,
            banks: 16,
            latency: 3,
        };
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        for i in 0..512 {
            cache.insert(Pid(1), BlockAddr::from_index(i), 0, false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 512;
            std::hint::black_box(cache.lookup(Pid(1), BlockAddr::from_index(i)).is_some())
        })
    });

    c.bench_function("substrate/mesi_request", |b| {
        let mut dir = DirectoryMesi::table2();
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            std::hint::black_box(dir.request(
                AgentId::HOST_L1,
                PhysAddr::new(i % (1 << 20)),
                MesiReq::GetS,
            ))
        })
    });

    c.bench_function("substrate/acc_tile_access", |b| {
        let cfg = SystemConfig::small();
        let mut tile = AccTile::new(
            2,
            cfg.l0x,
            cfg.l1x,
            TileTiming::default(),
            WritePolicy::WriteBack,
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let block = BlockAddr::from_index(t % 64);
            match tile.axc_access(
                AxcId::new(0),
                Pid(1),
                block,
                AccessKind::Load,
                Cycle::new(t),
                500,
            ) {
                AccAccess::FillNeeded { request_at } => {
                    std::hint::black_box(tile.complete_fill(
                        AxcId::new(0),
                        Pid(1),
                        block,
                        AccessKind::Load,
                        request_at + 40,
                        500,
                    ));
                }
                other => {
                    std::hint::black_box(other);
                }
            }
        })
    });

    c.bench_function("substrate/tlb_translate", |b| {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 4096;
            std::hint::black_box(tlb.translate(Pid(1), VirtAddr::new(i % (1 << 22)), &mut pt))
        })
    });

    c.bench_function("substrate/event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(Cycle::new(t + 100), t);
            if q.len() > 64 {
                std::hint::black_box(q.pop());
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
