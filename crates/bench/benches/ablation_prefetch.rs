//! Ablation: the L1X sequential stream prefetcher (DESIGN.md
//! "Extensions"). Reports, for the large-working-set suites, how much of
//! the oracle DMA's push advantage a simple pull-side prefetcher recovers.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Tracking, Scale::Tiny);
    for degree in [0usize, 2, 4, 8] {
        let cfg = SystemConfig::small().with_l1x_prefetch(degree);
        let res = run_system(SystemKind::Fusion, &wl, &cfg).unwrap();
        let t = res.tile.unwrap();
        println!(
            "prefetch ablation (TRACK tiny) degree={degree}: {} cycles, {} installs, {} hits",
            res.total_cycles, t.prefetch_installs, t.prefetch_hits,
        );
    }
    let mut g = c.benchmark_group("ablation_prefetch");
    for degree in [0usize, 4] {
        let cfg = SystemConfig::small().with_l1x_prefetch(degree);
        g.bench_function(format!("track_tiny/degree{degree}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_system(SystemKind::Fusion, &wl, &cfg)
                        .unwrap()
                        .total_cycles,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
