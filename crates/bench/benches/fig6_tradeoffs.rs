//! Figure 6 regeneration: the SCRATCH / SHARED / FUSION comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::{run_system, SystemKind};
use fusion_workloads::{build_suite, Scale, SuiteId};

fn bench(c: &mut Criterion) {
    let wl = build_suite(SuiteId::Filter, Scale::Tiny);
    let mut g = c.benchmark_group("fig6");
    for kind in SystemKind::FIG6 {
        g.bench_function(format!("filter_tiny/{kind}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_system(kind, &wl, &Default::default())
                        .unwrap()
                        .total_cycles,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
