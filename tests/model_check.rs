//! Model-checking gate: the exhaustive explorer in `fusion-verify` must
//! (1) prove the shipped ACC and MESI transition functions clean over
//! small bounded configurations, (2) produce a minimal counterexample
//! for every plantable [`ProtocolFaultKind`], and (3) agree with the
//! timing [`DirectoryMesi`] — the verified machine and the simulated
//! machine are the same pure functions, so driving both over random
//! request sequences must yield identical message patterns.
//!
//! The CI `verify` job runs the larger cross-block spaces through
//! `sim verify`; this suite keeps tier-1 `cargo test` fast by pinning
//! the ACC models to their single-block configurations.

mod common;

use std::collections::HashMap;

use common::Rng;
use fusion_repro::coherence::transition::{agents_of, dir_transition};
use fusion_repro::coherence::{AgentId, DirState, DirectoryMesi, MesiReq};
use fusion_repro::types::{PhysAddr, ProtocolFaultKind, CACHE_BLOCK_BYTES};
use fusion_repro::verify::{fault_matches_protocol, parse_fault, run, VerifyProtocol, VerifySpec};

/// A spec that closes quickly in debug builds: single-block ACC spaces,
/// the default capacity-1 MESI directory.
fn fast_spec(protocol: VerifyProtocol) -> VerifySpec {
    let is_acc = matches!(
        protocol,
        VerifyProtocol::Acc | VerifyProtocol::AccDx | VerifyProtocol::AccRenew
    );
    VerifySpec {
        protocol,
        blocks: is_acc.then_some(1),
        ..VerifySpec::default()
    }
}

#[test]
fn shipped_protocols_verify_clean() {
    for protocol in [
        VerifyProtocol::Acc,
        VerifyProtocol::AccDx,
        VerifyProtocol::AccRenew,
        VerifyProtocol::Mesi,
    ] {
        let report = run(&fast_spec(protocol));
        assert_eq!(report.protocols.len(), 1);
        let p = &report.protocols[0];
        assert!(
            p.exploration.complete,
            "{}: exploration truncated before closing",
            p.protocol
        );
        assert!(
            p.exploration.violation.is_none(),
            "{}: unexpected violation: {:?}",
            p.protocol,
            p.exploration.violation.as_ref().map(|c| &c.violation)
        );
        assert!(p.exploration.states > 1, "{}: degenerate space", p.protocol);
    }
}

/// Every plantable fault kind must be caught by the invariant it was
/// designed to break, with a short minimal trace.
#[test]
fn every_planted_fault_kind_yields_a_counterexample() {
    let cases = [
        ("lease-overrun@1", VerifyProtocol::Acc, "lease-containment"),
        (
            "gtime-regression@1",
            VerifyProtocol::Acc,
            "lease-containment",
        ),
        ("empty-sharers@1", VerifyProtocol::Mesi, "nonempty-sharers"),
        ("wrong-owner@0", VerifyProtocol::Mesi, "dir-accuracy"),
    ];
    for (fault, protocol, rule) in cases {
        let fault = parse_fault(fault).expect("test fault spec parses");
        assert!(fault_matches_protocol(fault.kind, protocol));
        let mut spec = fast_spec(protocol);
        spec.fault = Some(fault);
        let report = run(&spec);
        let ce = report.protocols[0]
            .exploration
            .violation
            .as_ref()
            .unwrap_or_else(|| panic!("{fault:?} was not caught"));
        assert_eq!(ce.violation.rule, rule, "{fault:?} tripped the wrong rule");
        // BFS guarantees minimality: a planted fault firing at event N
        // needs at most a handful of setup actions, never a long tour of
        // the state space.
        assert!(
            !ce.steps.is_empty() && ce.steps.len() <= 8,
            "{fault:?}: trace of {} steps is not minimal-looking",
            ce.steps.len()
        );
        assert!(!ce.initial.is_empty(), "counterexample lost initial state");
    }
}

/// `--fault` kinds aimed at the wrong machine never fire: the spec layer
/// filters them, so the run stays clean rather than silently mutating
/// the other protocol's state.
#[test]
fn mismatched_fault_kinds_leave_protocols_clean() {
    let mut spec = fast_spec(VerifyProtocol::Mesi);
    spec.fault = parse_fault("lease-overrun@0");
    assert!(!run(&spec).violated());

    let mut spec = fast_spec(VerifyProtocol::Acc);
    spec.fault = parse_fault("wrong-owner@0");
    assert!(!run(&spec).violated());
}

/// The timing directory and the pure transition function are the same
/// machine: folding [`dir_transition`] over a shadow state must predict
/// every invalidation and owner-forward the real [`DirectoryMesi`]
/// emits. The working set fits the L2, so inclusion recalls never fire
/// and the shadow state needs no eviction modeling.
#[test]
fn directory_mesi_agrees_with_pure_transition_fold() {
    const SEQUENCES: u64 = 32;
    const STEPS: usize = 200;
    const BLOCKS: u64 = 8;
    const AGENTS: u8 = 4;

    for seed in 0..SEQUENCES {
        let mut rng = Rng::new(0x0D1E_5EC7 ^ seed);
        let mut dir = DirectoryMesi::table2();
        let mut shadow: HashMap<u64, DirState> = HashMap::new();

        for step in 0..STEPS {
            let block = rng.range_u64(0, BLOCKS);
            let agent = AgentId(rng.range_u8(0, AGENTS));
            let req = if rng.chance() {
                MesiReq::GetS
            } else {
                MesiReq::GetX
            };
            let pa = PhysAddr::new(block * CACHE_BLOCK_BYTES as u64);

            let prior = shadow.get(&block).copied().unwrap_or(DirState::Idle);
            let tr = dir_transition(prior, agent, req);
            let out = dir.request(agent, pa, req);

            let predicted_inval: Vec<AgentId> = agents_of(tr.invalidate).collect();
            assert_eq!(
                out.invalidated, predicted_inval,
                "seed {seed} step {step}: invalidations diverged from {prior:?}"
            );
            let predicted_fwd: Vec<AgentId> = tr.forward_owner.into_iter().collect();
            assert_eq!(
                out.forwarded_to, predicted_fwd,
                "seed {seed} step {step}: owner forwards diverged from {prior:?}"
            );
            assert!(
                out.recalls.is_empty(),
                "seed {seed} step {step}: working set was supposed to fit the L2"
            );
            shadow.insert(block, tr.next);
        }
    }
}

/// The checker's fault vocabulary and the model checker's fault
/// vocabulary are the same enum, so each kind maps to exactly one
/// protocol family.
#[test]
fn fault_kinds_partition_between_protocol_families() {
    for kind in [
        ProtocolFaultKind::LeaseOverrun,
        ProtocolFaultKind::GtimeRegression,
        ProtocolFaultKind::EmptySharerList,
        ProtocolFaultKind::WrongOwner,
    ] {
        let acc = fault_matches_protocol(kind, VerifyProtocol::Acc);
        let mesi = fault_matches_protocol(kind, VerifyProtocol::Mesi);
        assert!(acc ^ mesi, "{kind:?} must belong to exactly one family");
    }
}
