//! Multi-process tile sharing and the Appendix's synonym policy.
//!
//! The paper adds PID tags to the L0X/L1X so accelerated functions from
//! different processes can coexist on one tile, and permits at most one
//! virtual alias of a physical block inside the tile (Appendix). These
//! tests drive the protocol structures directly with two processes and
//! with aliased pages.

use fusion_repro::coherence::acc::{AccAccess, AccTile, TileTiming};
use fusion_repro::types::{
    AccessKind, AxcId, BlockAddr, CacheGeometry, Cycle, Pid, VirtAddr, WritePolicy,
};
use fusion_repro::vm::{AxRmap, L1xPointer, PageTable, RmapOutcome, Tlb};

fn tile() -> AccTile {
    AccTile::new(
        2,
        CacheGeometry {
            capacity_bytes: 4096,
            ways: 4,
            banks: 1,
            latency: 1,
        },
        CacheGeometry {
            capacity_bytes: 65536,
            ways: 8,
            banks: 16,
            latency: 3,
        },
        TileTiming::default(),
        WritePolicy::WriteBack,
    )
}

fn fill(t: &mut AccTile, axc: u16, pid: Pid, block: u64, kind: AccessKind, now: u64) -> Cycle {
    let b = BlockAddr::from_index(block);
    match t.axc_access(AxcId::new(axc), pid, b, kind, Cycle::new(now), 500) {
        AccAccess::FillNeeded { request_at } => {
            t.complete_fill(AxcId::new(axc), pid, b, kind, request_at + 40, 500)
                .done_at
        }
        AccAccess::L0Hit { done_at } | AccAccess::L1Served { done_at } => done_at,
    }
}

#[test]
fn same_virtual_block_different_pids_do_not_alias() {
    let mut t = tile();
    let (p1, p2) = (Pid::new(1), Pid::new(2));
    // Both processes use virtual block 5.
    fill(&mut t, 0, p1, 5, AccessKind::Store, 0);
    let misses_before = t.stats().l1_misses;
    // Process 2's access must NOT hit process 1's line: fresh fill.
    match t.axc_access(
        AxcId::new(1),
        p2,
        BlockAddr::from_index(5),
        AccessKind::Load,
        Cycle::new(10),
        500,
    ) {
        AccAccess::FillNeeded { .. } => {}
        other => panic!("PID tags failed to isolate: {other:?}"),
    }
    assert_eq!(t.stats().l1_misses, misses_before + 1);
    assert!(t.l1x_caches(p1, BlockAddr::from_index(5)));
}

#[test]
fn host_forward_touches_only_the_matching_pid() {
    let mut t = tile();
    let (p1, p2) = (Pid::new(1), Pid::new(2));
    fill(&mut t, 0, p1, 7, AccessKind::Store, 0);
    fill(&mut t, 1, p2, 7, AccessKind::Store, 100);
    // Forward for process 1 only.
    let fwd = t.host_forward(p1, BlockAddr::from_index(7), Cycle::new(1000));
    assert!(fwd.was_cached);
    assert!(!t.l1x_caches(p1, BlockAddr::from_index(7)));
    assert!(
        t.l1x_caches(p2, BlockAddr::from_index(7)),
        "pid-2 line must survive"
    );
}

#[test]
fn page_table_keeps_processes_in_disjoint_frames() {
    let mut pt = PageTable::new();
    let mut tlb = Tlb::new(16);
    let (p1, p2) = (Pid::new(1), Pid::new(2));
    for page in 0..32u64 {
        let va = VirtAddr::new(page * 4096);
        let pa1 = tlb.translate(p1, va, &mut pt);
        let pa2 = tlb.translate(p2, va, &mut pt);
        assert_ne!(
            pa1.page_base(),
            pa2.page_base(),
            "page {page} shared across pids"
        );
    }
}

#[test]
fn synonym_detected_and_single_copy_enforced() {
    // Appendix: two virtual pages of one process alias the same physical
    // frame; only one synonym may live in the tile.
    let mut pt = PageTable::new();
    let pid = Pid::new(1);
    let va_a = VirtAddr::new(0x10_000);
    let va_b = VirtAddr::new(0x40_000);
    let pa = pt.translate(pid, va_a);
    pt.alias(pid, va_b, pid, va_a);
    assert_eq!(pt.translate(pid, va_b).page_base(), pa.page_base());

    let mut rmap = AxRmap::new();
    let ptr_a = L1xPointer {
        pid,
        vblock: BlockAddr::containing(va_a),
    };
    let ptr_b = L1xPointer {
        pid,
        vblock: BlockAddr::containing(va_b),
    };
    assert_eq!(rmap.register(pa, ptr_a), RmapOutcome::Installed);
    // The alias arrives: a synonym is detected; the duplicate must be
    // evicted from the tile before the new alias is installed.
    let mut t = tile();
    fill(&mut t, 0, pid, ptr_a.vblock.index(), AccessKind::Store, 0);
    match rmap.register(pa, ptr_b) {
        RmapOutcome::Synonym(dup) => {
            assert_eq!(dup, ptr_a);
            let fwd = t.host_forward(dup.pid, dup.vblock, Cycle::new(100));
            assert!(
                fwd.was_cached,
                "duplicate synonym must be evicted from the tile"
            );
            rmap.replace(pa, ptr_b);
        }
        other => panic!("expected a synonym, got {other:?}"),
    }
    assert_eq!(rmap.lookup(pa), Some(ptr_b));
    assert!(!t.l1x_caches(pid, ptr_a.vblock));
    assert_eq!(rmap.synonyms_detected(), 1);
}

#[test]
fn two_processes_interleaved_keep_consistent_stats() {
    // Interleave two "programs" on one tile: totals must equal the sum of
    // their individual access counts, with no cross-pid hits.
    let mut t = tile();
    let (p1, p2) = (Pid::new(1), Pid::new(2));
    let mut now = 0u64;
    for round in 0..8u64 {
        for b in 0..8u64 {
            now += 20;
            fill(&mut t, 0, p1, b, AccessKind::Store, now);
            now += 20;
            fill(&mut t, 1, p2, b, AccessKind::Load, now);
        }
        let _ = round;
    }
    let s = t.stats();
    assert_eq!(s.l0_accesses, 2 * 8 * 8);
    // Each process cold-misses its own 8 blocks exactly once (leases are
    // long enough to cover the loop).
    assert_eq!(
        s.l1_misses, 16,
        "cross-pid interference changed miss counts"
    );
}
