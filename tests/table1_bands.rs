//! Table 1 band checks: the regenerated accelerator characteristics must
//! stay in the qualitative bands the paper reports. Generous tolerances —
//! these pin the *shape* of each function's behaviour, not exact numbers.

use fusion_repro::accel::analysis::{op_mix, sharing_degree};
use fusion_repro::workloads::{build_suite, Scale, SuiteId};

fn mix(id: SuiteId, f: &str) -> fusion_repro::accel::analysis::OpMix {
    op_mix(&build_suite(id, Scale::Small), f)
}

fn shr(id: SuiteId, f: &str) -> f64 {
    sharing_degree(&build_suite(id, Scale::Small), f)
}

#[test]
fn fft_butterflies_are_memory_heavy_and_fully_shared() {
    // Paper: step3 46.3/43.2 %LD class, %SHR 50-100 across steps.
    let m = mix(SuiteId::Fft, "step4");
    assert!(m.ld_pct > 25.0, "ld {:.0}", m.ld_pct);
    assert!(m.st_pct > 15.0, "st {:.0}", m.st_pct);
    for f in ["step3", "step4", "step5"] {
        assert!(shr(SuiteId::Fft, f) > 50.0, "{f}");
    }
}

#[test]
fn adpcm_is_integer_only_and_nearly_fully_shared() {
    // Paper: coder/decoder 0 %FP, %SHR ~99.
    for f in ["coder", "decoder"] {
        let m = mix(SuiteId::Adpcm, f);
        assert_eq!(m.fp_pct, 0.0, "{f} has FP ops");
        assert!(m.int_pct > 50.0, "{f} int {:.0}", m.int_pct);
        assert!(shr(SuiteId::Adpcm, f) > 90.0, "{f} %SHR");
    }
}

#[test]
fn histogram_pipeline_sharing_ordering() {
    // Paper Table 1: histogram 100 %, equaliz. 66 %, hsl2rgb 75 %,
    // rgb2hsl 8.3 % — the converters' private input/output planes give
    // them the lowest sharing.
    let h = shr(SuiteId::Histogram, "histogram");
    let e = shr(SuiteId::Histogram, "equaliz.");
    let r = shr(SuiteId::Histogram, "rgb2hsl");
    assert!(h > 95.0, "histogram {h:.0}");
    assert!(e > 60.0, "equaliz {e:.0}");
    assert!(r < e, "rgb2hsl {r:.0} !< equaliz {e:.0}");
}

#[test]
fn fp_heavy_functions_match_table1() {
    // Paper: bright 48.9 %FP, rgb2hsl 51.8 %FP, hsl2rgb 40.8 %FP.
    assert!(mix(SuiteId::Susan, "bright").fp_pct > 40.0);
    assert!(mix(SuiteId::Histogram, "rgb2hsl").fp_pct > 40.0);
    assert!(mix(SuiteId::Histogram, "hsl2rgb").fp_pct > 30.0);
    // And the integer-dominated ones stay integer-dominated.
    assert!(mix(SuiteId::Susan, "smooth").fp_pct < 5.0);
    assert!(mix(SuiteId::Filter, "medfilt").fp_pct < 5.0);
}

#[test]
fn load_heavy_functions_match_table1() {
    // Paper: finalSAD 71.3 %LD, smooth 67.6 %LD, medfilt 49.1 %LD —
    // all load-dominated with tiny store fractions.
    for (id, f) in [
        (SuiteId::Disparity, "finalSAD"),
        (SuiteId::Susan, "smooth"),
        (SuiteId::Filter, "medfilt"),
    ] {
        let m = mix(id, f);
        assert!(
            m.ld_pct > 3.5 * m.st_pct,
            "{f}: ld {:.0}% st {:.0}%",
            m.ld_pct,
            m.st_pct
        );
    }
}

#[test]
fn susan_sharing_ordering_matches_table1() {
    // Paper: smooth 36.2 %, edges 12.3 %, corn 7.6 % — corners/edges sit
    // well below smooth.
    let s = shr(SuiteId::Susan, "smooth");
    let c = shr(SuiteId::Susan, "corn");
    assert!(c < s, "corn {c:.0} !< smooth {s:.0}");
}

#[test]
fn mlp_configuration_matches_table1() {
    // Spot-check the per-function MLP wiring against Table 1.
    let expect = [
        (SuiteId::Fft, "step1", 5),
        (SuiteId::Disparity, "finalSAD", 6),
        (SuiteId::Tracking, "calcSobel", 1),
        (SuiteId::Adpcm, "coder", 2),
        (SuiteId::Histogram, "histogram", 1),
    ];
    for (id, f, mlp) in expect {
        let wl = build_suite(id, Scale::Tiny);
        let p = wl.phases.iter().find(|p| p.name == f).unwrap();
        assert_eq!(p.mlp, mlp, "{f}");
    }
}

#[test]
fn lease_configuration_matches_table3() {
    // Spot-check the per-function lease wiring against Table 3.
    let expect = [
        (SuiteId::Fft, "step3", 200),
        (SuiteId::Fft, "step4", 700),
        (SuiteId::Adpcm, "coder", 1400),
        (SuiteId::Susan, "smooth", 1700),
        (SuiteId::Filter, "medfilt", 400),
        (SuiteId::Tracking, "imgResize", 770),
    ];
    for (id, f, lease) in expect {
        let wl = build_suite(id, Scale::Tiny);
        let p = wl.phases.iter().find(|p| p.name == f).unwrap();
        assert_eq!(p.lease, lease, "{f}");
    }
}
