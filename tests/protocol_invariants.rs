//! Property-based protocol invariants: the ACC lease protocol, the MESI
//! directory and the cache structures are driven with random access
//! sequences and checked against their defining invariants.
//!
//! Randomness comes from the seeded deterministic generator in
//! `common::Rng`, so every run explores the same sequences and failures
//! reproduce exactly.

mod common;

use std::collections::HashMap;

use common::Rng;
use fusion_repro::coherence::acc::{AccAccess, AccTile, TileTiming};
use fusion_repro::coherence::{AgentId, DirectoryMesi, MesiReq};
use fusion_repro::mem::{ReplacementPolicy, SetAssocCache};
use fusion_repro::types::{
    AccessKind, AxcId, BlockAddr, CacheGeometry, Cycle, PhysAddr, Pid, WritePolicy,
};
use fusion_repro::vm::{PageTable, Tlb};

/// Random sequences explored per property.
const CASES: u64 = 64;

fn tile(axcs: usize) -> AccTile {
    AccTile::new(
        axcs,
        CacheGeometry {
            capacity_bytes: 1024,
            ways: 4,
            banks: 1,
            latency: 1,
        },
        CacheGeometry {
            capacity_bytes: 8192,
            ways: 8,
            banks: 4,
            latency: 3,
        },
        TileTiming::default(),
        WritePolicy::WriteBack,
    )
}

/// One random tile operation.
#[derive(Debug, Clone)]
enum TileOp {
    Access {
        axc: u16,
        block: u64,
        write: bool,
        dt: u16,
    },
    Downgrade {
        axc: u16,
    },
    HostForward {
        block: u64,
        dt: u16,
    },
}

/// Draws one tile operation with the 8:1:1 access/downgrade/forward mix
/// the proptest strategy used.
fn tile_op(rng: &mut Rng) -> TileOp {
    match rng.range_u64(0, 10) {
        0..=7 => TileOp::Access {
            axc: rng.range_u16(0, 3),
            block: rng.range_u64(0, 24),
            write: rng.chance(),
            dt: rng.range_u16(1, 300),
        },
        8 => TileOp::Downgrade {
            axc: rng.range_u16(0, 3),
        },
        _ => TileOp::HostForward {
            block: rng.range_u64(0, 24),
            dt: rng.range_u16(1, 300),
        },
    }
}

fn tile_ops(rng: &mut Rng) -> Vec<TileOp> {
    let len = rng.range_usize(1, 200);
    (0..len).map(|_| tile_op(rng)).collect()
}

/// ACC liveness + monotonicity: every access completes at or after its
/// issue time, and host forwards release no earlier than requested.
#[test]
fn acc_accesses_always_complete_forward() {
    let mut rng = Rng::new(0xACC1);
    for _ in 0..CASES {
        let ops = tile_ops(&mut rng);
        let mut t = tile(3);
        let pid = Pid::new(1);
        let mut now = Cycle::new(0);
        for op in ops {
            match op {
                TileOp::Access {
                    axc,
                    block,
                    write,
                    dt,
                } => {
                    now += dt as u64;
                    let kind = if write {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let done = match t.axc_access(
                        AxcId::new(axc),
                        pid,
                        BlockAddr::from_index(block),
                        kind,
                        now,
                        100,
                    ) {
                        AccAccess::L0Hit { done_at } | AccAccess::L1Served { done_at } => done_at,
                        AccAccess::FillNeeded { request_at } => {
                            assert!(request_at >= now);
                            t.complete_fill(
                                AxcId::new(axc),
                                pid,
                                BlockAddr::from_index(block),
                                kind,
                                request_at + 40,
                                100,
                            )
                            .done_at
                        }
                    };
                    assert!(done >= now, "completion {done} before issue {now}");
                }
                TileOp::Downgrade { axc } => t.downgrade_all(AxcId::new(axc), pid, now),
                TileOp::HostForward { block, dt } => {
                    now += dt as u64;
                    let fwd = t.host_forward(pid, BlockAddr::from_index(block), now);
                    assert!(fwd.release_at >= now, "PUTX released in the past");
                }
            }
        }
    }
}

/// ACC accounting: hits + misses == accesses, and every miss sent
/// exactly one request message.
#[test]
fn acc_counter_consistency() {
    let mut rng = Rng::new(0xACC2);
    for _ in 0..CASES {
        let ops = tile_ops(&mut rng);
        let mut t = tile(3);
        let pid = Pid::new(1);
        let mut now = Cycle::new(0);
        for op in ops {
            if let TileOp::Access {
                axc,
                block,
                write,
                dt,
            } = op
            {
                now += dt as u64;
                let kind = if write {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                if let AccAccess::FillNeeded { request_at } = t.axc_access(
                    AxcId::new(axc),
                    pid,
                    BlockAddr::from_index(block),
                    kind,
                    now,
                    100,
                ) {
                    t.complete_fill(
                        AxcId::new(axc),
                        pid,
                        BlockAddr::from_index(block),
                        kind,
                        request_at + 40,
                        100,
                    );
                }
            }
        }
        let s = t.stats();
        assert_eq!(s.l0_hits + s.l0_misses, s.l0_accesses);
        assert_eq!(s.msgs_l0_to_l1, s.l0_misses);
        assert_eq!(s.l1_hits + s.l1_misses, s.l0_misses);
        assert_eq!(
            s.data_l1_to_l0, s.l0_misses,
            "every miss gets one data response"
        );
    }
}

/// After a host forward, the tile no longer caches the block at the
/// L1X, so the directory can hand ownership to the host.
#[test]
fn acc_host_forward_relinquishes() {
    let mut rng = Rng::new(0xACC3);
    for _ in 0..CASES {
        let blocks: Vec<u64> = {
            let len = rng.range_usize(1, 40);
            (0..len).map(|_| rng.range_u64(0, 16)).collect()
        };
        let mut t = tile(2);
        let pid = Pid::new(1);
        let mut now = Cycle::new(0);
        for &b in &blocks {
            now += 50;
            let block = BlockAddr::from_index(b);
            if let AccAccess::FillNeeded { request_at } =
                t.axc_access(AxcId::new(0), pid, block, AccessKind::Store, now, 100)
            {
                t.complete_fill(
                    AxcId::new(0),
                    pid,
                    block,
                    AccessKind::Store,
                    request_at + 40,
                    100,
                );
            }
        }
        for &b in &blocks {
            now += 10;
            t.host_forward(pid, BlockAddr::from_index(b), now);
            assert!(!t.l1x_caches(pid, BlockAddr::from_index(b)));
        }
    }
}

/// MESI single-owner invariant: after any request sequence, at most
/// one agent owns a block exclusively, and the directory's answer is
/// consistent with the request history.
#[test]
fn mesi_single_owner() {
    let mut rng = Rng::new(0x4E51);
    for _ in 0..CASES {
        let reqs: Vec<(u8, u64, bool)> = {
            let len = rng.range_usize(1, 100);
            (0..len)
                .map(|_| (rng.range_u8(0, 2), rng.range_u64(0, 16), rng.chance()))
                .collect()
        };
        let mut dir = DirectoryMesi::table2();
        let mut last_exclusive: HashMap<u64, u8> = HashMap::new();
        for (agent, block, is_getx) in reqs {
            let pa = PhysAddr::new(block * 64);
            let req = if is_getx {
                MesiReq::GetX
            } else {
                MesiReq::GetS
            };
            let out = dir.request(AgentId(agent), pa, req);
            // An agent never receives a forward/invalidation for its own
            // request.
            assert!(!out.forwarded_to.contains(&AgentId(agent)));
            assert!(!out.invalidated.contains(&AgentId(agent)));
            if is_getx {
                last_exclusive.insert(block, agent);
            }
            // The last GetX issuer owns the block unless someone read it
            // afterwards.
            if let Some(owner) = dir.owner(pa) {
                assert!(dir.agent_caches(owner, pa));
            }
        }
    }
}

/// The cache never exceeds its capacity and never loses a block
/// without an eviction: model-checked against a HashMap.
#[test]
fn cache_matches_map_model() {
    let mut rng = Rng::new(0xCACE);
    for _ in 0..CASES {
        let ops: Vec<u64> = {
            let len = rng.range_usize(1, 300);
            (0..len).map(|_| rng.range_u64(0, 64)).collect()
        };
        let geom = CacheGeometry {
            capacity_bytes: 1024,
            ways: 2,
            banks: 1,
            latency: 1,
        };
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let pid = Pid::new(1);
        for (i, block) in ops.iter().enumerate() {
            let b = BlockAddr::from_index(*block);
            if let Some(ev) = cache.insert(pid, b, i as u64, false) {
                model.remove(&ev.block.index());
            }
            model.insert(*block, i as u64);
            assert!(cache.len() <= geom.blocks());
            // Everything the cache holds agrees with the model.
            for line in cache.iter() {
                assert_eq!(model.get(&line.block.index()), Some(&line.meta));
            }
        }
    }
}

/// TLB translations always agree with the page table.
#[test]
fn tlb_agrees_with_page_table() {
    let mut rng = Rng::new(0x71B);
    for _ in 0..CASES {
        let addrs: Vec<u64> = {
            let len = rng.range_usize(1, 200);
            (0..len).map(|_| rng.range_u64(0, 1 << 20)).collect()
        };
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(8);
        let pid = Pid::new(1);
        for a in addrs {
            let va = fusion_repro::types::VirtAddr::new(a);
            let via_tlb = tlb.translate(pid, va, &mut pt);
            let direct = pt.lookup(pid, va).expect("translated page must exist");
            assert_eq!(via_tlb, direct);
            assert_eq!(via_tlb.page_offset(), va.page_offset());
        }
    }
}

/// The same liveness/accounting invariants hold with every protocol
/// extension enabled (lease renewal + interleaved prefetch installs).
#[test]
fn acc_invariants_hold_with_extensions() {
    let mut rng = Rng::new(0xE71);
    for _ in 0..CASES {
        let ops = tile_ops(&mut rng);
        let mut t = tile(3);
        t.set_lease_renewal(true);
        let pid = Pid::new(1);
        let mut now = Cycle::new(0);
        let mut op_index = 0u64;
        for op in ops {
            op_index += 1;
            // Interleave background prefetch installs like the stream
            // prefetcher would.
            if op_index.is_multiple_of(5) {
                t.prefetch_install(pid, BlockAddr::from_index(op_index % 24), now);
            }
            match op {
                TileOp::Access {
                    axc,
                    block,
                    write,
                    dt,
                } => {
                    now += dt as u64;
                    let kind = if write {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let done = match t.axc_access(
                        AxcId::new(axc),
                        pid,
                        BlockAddr::from_index(block),
                        kind,
                        now,
                        100,
                    ) {
                        AccAccess::L0Hit { done_at } | AccAccess::L1Served { done_at } => done_at,
                        AccAccess::FillNeeded { request_at } => {
                            t.complete_fill(
                                AxcId::new(axc),
                                pid,
                                BlockAddr::from_index(block),
                                kind,
                                request_at + 40,
                                100,
                            )
                            .done_at
                        }
                    };
                    assert!(done >= now);
                }
                TileOp::Downgrade { axc } => t.downgrade_all(AxcId::new(axc), pid, now),
                TileOp::HostForward { block, dt } => {
                    now += dt as u64;
                    let fwd = t.host_forward(pid, BlockAddr::from_index(block), now);
                    assert!(fwd.release_at >= now);
                }
            }
        }
        let s = t.stats();
        assert_eq!(s.l0_hits + s.l0_misses, s.l0_accesses);
        assert!(s.prefetch_hits <= s.prefetch_installs);
        assert!(s.lease_renewals <= s.l0_lease_expiries);
    }
}

/// NUCA ring latency is symmetric and bounded by the half-ring.
#[test]
fn nuca_latency_symmetric_and_bounded() {
    let mut rng = Rng::new(0x20CA);
    for _ in 0..256 {
        let block = rng.range_u64(0, 10_000);
        let from = rng.range_u64(0, 8);
        let nuca = fusion_repro::mem::NucaRing::table2();
        let b = BlockAddr::from_index(block);
        let home = nuca.home_tile(b);
        assert_eq!(nuca.distance(home, from), nuca.distance(from, home));
        let lat = nuca.latency(b, from);
        assert!((12..=12 + 4 * 4).contains(&lat), "latency {lat}");
    }
}

#[test]
fn acc_write_epoch_serializes_conflicting_access() {
    // Deterministic SWMR check: a reader can never complete while a
    // foreign write epoch is active.
    let mut t = tile(2);
    let pid = Pid::new(1);
    let b = BlockAddr::from_index(3);
    let lease = 1000u32;
    if let AccAccess::FillNeeded { request_at } = t.axc_access(
        AxcId::new(0),
        pid,
        b,
        AccessKind::Store,
        Cycle::new(0),
        lease,
    ) {
        t.complete_fill(
            AxcId::new(0),
            pid,
            b,
            AccessKind::Store,
            request_at + 40,
            lease,
        );
    }
    // The write epoch runs to ~(grant + 1000); a foreign read at t=100
    // must not complete before it.
    match t.axc_access(
        AxcId::new(1),
        pid,
        b,
        AccessKind::Load,
        Cycle::new(100),
        lease,
    ) {
        AccAccess::L1Served { done_at } => assert!(
            done_at.value() > 1000,
            "reader completed at {done_at} inside the write epoch"
        ),
        other => panic!("expected L1Served, got {other:?}"),
    }
}
