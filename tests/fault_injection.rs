//! End-to-end fault injection over the full evaluation grid: the sweep
//! engine's central robustness guarantee (DESIGN.md §10).
//!
//! A 4-system × 7-suite sweep with planted worker panics, trace
//! corruption and livelocks must (1) complete every healthy job with
//! results identical to a fault-free sweep, (2) report every planted
//! fault as the right typed [`SimError`], and (3) behave identically on
//! two runs with the same seed — faults never leak across job isolation
//! boundaries and never introduce nondeterminism.

use fusion_core::{full_grid, Fault, FaultPlan, Sweep, SweepOutcome, SweepSummary};
use fusion_types::error::{SimError, TimeoutKind};
use fusion_types::SystemConfig;
use fusion_workloads::Scale;

const GRID: usize = 28;

fn run_with(plan: FaultPlan, retries: u32) -> Vec<SweepOutcome> {
    Sweep::new(Scale::Tiny)
        .retries(retries)
        .with_faults(plan)
        .run(full_grid(&SystemConfig::small()))
}

#[test]
fn planted_faults_do_not_disturb_healthy_jobs() {
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&SystemConfig::small()));
    assert_eq!(clean.len(), GRID);
    assert!(clean.iter().all(|o| o.result.is_ok()), "clean grid failed");

    // Four faults across the grid: one panic, one corrupt trace, one
    // livelock, one truncation — the acceptance scenario (>= 3 faults).
    let plan = FaultPlan::new()
        .inject(2, Fault::Panic)
        .inject(9, Fault::CorruptTrace)
        .inject(17, Fault::Livelock)
        .inject(25, Fault::TruncateTrace);
    let faulty = run_with(plan.clone(), 0);
    assert_eq!(faulty.len(), GRID);

    for (i, (f, c)) in faulty.iter().zip(&clean).enumerate() {
        if plan.fault_for(i).is_some() {
            assert!(f.result.is_err(), "job {i} should have failed");
        } else {
            // Healthy neighbors are byte-identical to the fault-free run
            // (SimResult equality covers every simulated statistic).
            assert_eq!(
                f.result.as_ref().unwrap(),
                c.result.as_ref().unwrap(),
                "fault leaked into healthy job {i} ({})",
                f.job.label()
            );
        }
    }

    let summary = SweepSummary::of(&faulty);
    assert_eq!(summary.completed, GRID - 4);
    assert_eq!(summary.failed, 4);
    assert!(!summary.all_ok());
}

#[test]
fn every_planted_fault_surfaces_as_its_typed_error() {
    let plan = FaultPlan::new()
        .inject(2, Fault::Panic)
        .inject(9, Fault::CorruptTrace)
        .inject(17, Fault::Livelock)
        .inject(25, Fault::TruncateTrace);
    let outcomes = run_with(plan, 0);

    match &outcomes[2].result {
        Err(SimError::JobPanicked { job, .. }) => assert_eq!(*job, outcomes[2].job.label()),
        other => panic!("job 2: expected JobPanicked, got {other:?}"),
    }
    for i in [9, 25] {
        match &outcomes[i].result {
            Err(SimError::DecodeError { .. }) => {}
            other => panic!("job {i}: expected DecodeError, got {other:?}"),
        }
        // Trace damage is deterministic, so it must not have been retried.
        assert_eq!(outcomes[i].attempts, 1, "job {i} wasted retries");
    }
    match &outcomes[17].result {
        Err(SimError::Timeout { kind, .. }) => assert_eq!(*kind, TimeoutKind::SimCycleBudget),
        other => panic!("job 17: expected Timeout, got {other:?}"),
    }
}

#[test]
fn same_seed_sweeps_fail_identically() {
    let plan = FaultPlan::seeded(0xFA57, GRID, 4);
    assert_eq!(plan.len(), 4);
    assert_eq!(plan, FaultPlan::seeded(0xFA57, GRID, 4));

    let a = run_with(plan.clone(), 1);
    let b = run_with(plan, 1);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.job.label(), y.job.label());
        assert_eq!(
            x.result,
            y.result,
            "{}: same-seed runs diverged",
            x.job.label()
        );
        assert_eq!(
            x.attempts,
            y.attempts,
            "{}: retry counts diverged",
            x.job.label()
        );
    }
}

#[test]
fn transient_faults_recover_under_retry_with_clean_results() {
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&SystemConfig::small()));
    let plan = FaultPlan::new().inject(5, Fault::TransientPanic { failures: 1 });
    let retried = run_with(plan, 1);

    assert_eq!(retried[5].attempts, 2, "first attempt panics, second runs");
    // The recovered result is indistinguishable from a never-faulted run.
    assert_eq!(
        retried[5].result.as_ref().unwrap(),
        clean[5].result.as_ref().unwrap()
    );
    let summary = SweepSummary::of(&retried);
    assert!(summary.all_ok());
    assert_eq!(summary.retried, 1);
}
