//! End-to-end fault injection over the full evaluation grid: the sweep
//! engine's central robustness guarantee (DESIGN.md §10).
//!
//! A 4-system × 7-suite sweep with planted worker panics, trace
//! corruption and livelocks must (1) complete every healthy job with
//! results identical to a fault-free sweep, (2) report every planted
//! fault as the right typed [`SimError`], and (3) behave identically on
//! two runs with the same seed — faults never leak across job isolation
//! boundaries and never introduce nondeterminism.
//!
//! The chaos-harness half (DESIGN.md §14) extends the same machinery to
//! the durability layer: worker kills, cancellation storms, journal
//! truncation/torn-write/corruption and disk-full simulation, pinned by
//! the invariant that (crash anywhere → resume) reproduces the
//! uninterrupted run's result payloads byte for byte.

use std::path::PathBuf;
use std::sync::Arc;

use fusion_core::journal::{self, JournalHeader, JournalSink, JournalWriter};
use fusion_core::TraceCache;
use fusion_core::{full_grid, Fault, FaultPlan, Sweep, SweepJob, SweepOutcome, SweepSummary};
use fusion_types::error::{DegradeLevel, SimError, TimeoutKind};
use fusion_types::SystemConfig;
use fusion_workloads::Scale;

const GRID: usize = 28;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fusion_chaos_{}_{name}.jsonl", std::process::id()))
}

fn wal_header(grid: usize) -> JournalHeader {
    JournalHeader {
        scale: "tiny".to_string(),
        code_version: journal::code_version(),
        grid,
    }
}

fn run_with(plan: FaultPlan, retries: u32) -> Vec<SweepOutcome> {
    Sweep::new(Scale::Tiny)
        .retries(retries)
        .with_faults(plan)
        .run(full_grid(&SystemConfig::small()))
}

#[test]
fn planted_faults_do_not_disturb_healthy_jobs() {
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&SystemConfig::small()));
    assert_eq!(clean.len(), GRID);
    assert!(clean.iter().all(|o| o.result.is_ok()), "clean grid failed");

    // Four faults across the grid: one panic, one corrupt trace, one
    // livelock, one truncation — the acceptance scenario (>= 3 faults).
    let plan = FaultPlan::new()
        .inject(2, Fault::Panic)
        .inject(9, Fault::CorruptTrace)
        .inject(17, Fault::Livelock)
        .inject(25, Fault::TruncateTrace);
    let faulty = run_with(plan.clone(), 0);
    assert_eq!(faulty.len(), GRID);

    for (i, (f, c)) in faulty.iter().zip(&clean).enumerate() {
        if plan.fault_for(i).is_some() {
            assert!(f.result.is_err(), "job {i} should have failed");
        } else {
            // Healthy neighbors are byte-identical to the fault-free run
            // (SimResult equality covers every simulated statistic).
            assert_eq!(
                f.result.as_ref().unwrap(),
                c.result.as_ref().unwrap(),
                "fault leaked into healthy job {i} ({})",
                f.job.label()
            );
        }
    }

    let summary = SweepSummary::of(&faulty);
    assert_eq!(summary.completed, GRID - 4);
    assert_eq!(summary.failed, 4);
    assert!(!summary.all_ok());
}

#[test]
fn every_planted_fault_surfaces_as_its_typed_error() {
    let plan = FaultPlan::new()
        .inject(2, Fault::Panic)
        .inject(9, Fault::CorruptTrace)
        .inject(17, Fault::Livelock)
        .inject(25, Fault::TruncateTrace);
    let outcomes = run_with(plan, 0);

    match &outcomes[2].result {
        Err(SimError::JobPanicked { job, .. }) => assert_eq!(*job, outcomes[2].job.label()),
        other => panic!("job 2: expected JobPanicked, got {other:?}"),
    }
    for i in [9, 25] {
        match &outcomes[i].result {
            Err(SimError::DecodeError { .. }) => {}
            other => panic!("job {i}: expected DecodeError, got {other:?}"),
        }
        // Trace damage is deterministic, so it must not have been retried.
        assert_eq!(outcomes[i].attempts, 1, "job {i} wasted retries");
    }
    match &outcomes[17].result {
        Err(SimError::Timeout { kind, .. }) => assert_eq!(*kind, TimeoutKind::SimCycleBudget),
        other => panic!("job 17: expected Timeout, got {other:?}"),
    }
}

#[test]
fn same_seed_sweeps_fail_identically() {
    let plan = FaultPlan::seeded(0xFA57, GRID, 4);
    assert_eq!(plan.len(), 4);
    assert_eq!(plan, FaultPlan::seeded(0xFA57, GRID, 4));

    let a = run_with(plan.clone(), 1);
    let b = run_with(plan, 1);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.job.label(), y.job.label());
        assert_eq!(
            x.result,
            y.result,
            "{}: same-seed runs diverged",
            x.job.label()
        );
        assert_eq!(
            x.attempts,
            y.attempts,
            "{}: retry counts diverged",
            x.job.label()
        );
    }
}

#[test]
fn transient_faults_recover_under_retry_with_clean_results() {
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&SystemConfig::small()));
    let plan = FaultPlan::new().inject(5, Fault::TransientPanic { failures: 1 });
    let retried = run_with(plan, 1);

    assert_eq!(retried[5].attempts, 2, "first attempt panics, second runs");
    // The recovered result is indistinguishable from a never-faulted run.
    assert_eq!(
        retried[5].result.as_ref().unwrap(),
        clean[5].result.as_ref().unwrap()
    );
    let summary = SweepSummary::of(&retried);
    assert!(summary.all_ok());
    assert_eq!(summary.retried, 1);
    // The retry spun a deterministic backoff; first-try jobs spun none.
    assert!(retried[5].backoff > 0, "retried job must report backoff");
    assert!(retried
        .iter()
        .enumerate()
        .all(|(i, o)| i == 5 || o.backoff == 0));
    assert_eq!(
        retried[5].backoff,
        run_with(
            FaultPlan::new().inject(5, Fault::TransientPanic { failures: 1 }),
            1
        )[5]
        .backoff,
        "backoff schedule must be deterministic"
    );
}

#[test]
fn cancel_storm_recovers_under_retry_with_clean_results() {
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&SystemConfig::small()));
    let plan = FaultPlan::new().inject(11, Fault::CancelStorm);

    // Without a retry budget the storm is a transient wall-clock timeout.
    let stormed = run_with(plan.clone(), 0);
    match &stormed[11].result {
        Err(SimError::Timeout { kind, .. }) => assert_eq!(*kind, TimeoutKind::WallClock),
        other => panic!("job 11: expected WallClock timeout, got {other:?}"),
    }

    // With one retry the storm clears and the result is byte-identical.
    let retried = run_with(plan, 1);
    assert_eq!(retried[11].attempts, 2);
    assert!(retried[11].backoff > 0);
    assert_eq!(
        retried[11].result.as_ref().unwrap(),
        clean[11].result.as_ref().unwrap()
    );
    assert!(SweepSummary::of(&retried).all_ok());
}

#[test]
fn worker_kill_leaves_a_gap_and_the_journal_resumes_it() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    let clean = Sweep::new(Scale::Tiny).run(jobs.clone());

    let path = temp_path("worker_kill");
    let traces = Arc::new(TraceCache::new());
    let writer = JournalWriter::create(&path, &wal_header(jobs.len())).unwrap();
    let outcomes = Sweep::new(Scale::Tiny)
        .with_trace_cache(Arc::clone(&traces))
        .with_faults(FaultPlan::new().inject(13, Fault::WorkerKill))
        .with_journal(Arc::new(JournalSink::new(writer)))
        .run(jobs.clone());

    // The killed worker's claim vanished. How much of the rest completed
    // depends on the pool size (a one-worker pool dies with its only
    // worker), but whatever completed is healthy and job 13 is not in it.
    assert!(outcomes.len() < GRID);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    assert!(!outcomes.iter().any(|o| o.job.label() == jobs[13].label()));

    // The journal holds exactly the completed points; resume re-runs only
    // the holes and lands on the uninterrupted results.
    let rec = journal::read_journal(&std::fs::read(&path).unwrap());
    std::fs::remove_file(&path).ok();
    let mut fp = |suite| traces.get(suite, Scale::Tiny).fingerprint();
    let plan =
        journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp).unwrap();
    assert_eq!(plan.resumed_count(), outcomes.len());
    assert!(plan.resumed[13].is_none());
    let todo: Vec<SweepJob> = jobs
        .iter()
        .zip(&plan.resumed)
        .filter(|(_, r)| r.is_none())
        .map(|(j, _)| j.clone())
        .collect();
    let rerun = Sweep::new(Scale::Tiny)
        .with_trace_cache(Arc::clone(&traces))
        .run(todo.clone());
    assert_eq!(rerun.len(), todo.len());
    for o in &rerun {
        let i = jobs
            .iter()
            .position(|j| j.label() == o.job.label())
            .unwrap();
        assert_eq!(
            o.result.as_ref().unwrap(),
            clean[i].result.as_ref().unwrap(),
            "{} diverged after kill + resume",
            o.job.label()
        );
    }
}

/// The tentpole invariant: crash *anywhere* — after any number of
/// journaled rows, mid-line, or on a corrupted line — then resume, and
/// the stitched result payloads are byte-identical to the uninterrupted
/// run's.
#[test]
fn crash_anywhere_then_resume_is_byte_identical() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    let traces = Arc::new(TraceCache::new());

    // Uninterrupted journaled reference run.
    let path = temp_path("crash_anywhere");
    let writer = JournalWriter::create(&path, &wal_header(jobs.len())).unwrap();
    let reference = Sweep::new(Scale::Tiny)
        .with_trace_cache(Arc::clone(&traces))
        .with_journal(Arc::new(JournalSink::new(writer)))
        .run(jobs.clone());
    let ref_json: Vec<String> = reference
        .iter()
        .map(|o| o.result.as_ref().unwrap().to_json())
        .collect();
    let wal = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = wal.lines().collect();
    assert_eq!(lines.len(), GRID + 1, "header + one row per grid point");

    let assert_resume_matches = |bytes: &[u8], expect_resumed: usize| {
        let rec = journal::read_journal(bytes);
        let mut fp = |suite| traces.get(suite, Scale::Tiny).fingerprint();
        let plan =
            journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp)
                .unwrap();
        assert_eq!(plan.resumed_count(), expect_resumed);
        let todo: Vec<SweepJob> = jobs
            .iter()
            .zip(&plan.resumed)
            .filter(|(_, r)| r.is_none())
            .map(|(j, _)| j.clone())
            .collect();
        let outcomes = Sweep::new(Scale::Tiny)
            .with_trace_cache(Arc::clone(&traces))
            .run(todo);
        let mut live = outcomes.iter();
        let stitched: Vec<String> = plan
            .resumed
            .iter()
            .map(|r| match r {
                Some(row) => row.result_json.clone(),
                None => live.next().unwrap().result.as_ref().unwrap().to_json(),
            })
            .collect();
        assert_eq!(stitched, ref_json, "resume diverged from uninterrupted run");
    };

    // Crash after k completed rows (truncation at line boundaries),
    // including the extremes: nothing journaled and everything journaled.
    for k in [0usize, 1, 13, GRID - 1, GRID] {
        let mut crashed = lines[..=k].join("\n");
        crashed.push('\n');
        assert_resume_matches(crashed.as_bytes(), k);
    }
    // Torn tail: the process died mid-write, leaving half a line.
    let torn = &wal.as_bytes()[..wal.len() - 40];
    assert_resume_matches(torn, GRID - 1);
    // A corrupted (bit-flipped) line mid-file fails its seal and re-runs;
    // its neighbors are untouched.
    let mut flipped = wal.clone().into_bytes();
    let mid_line_offset: usize = lines[..=13].iter().map(|l| l.len() + 1).sum::<usize>() + 30;
    flipped[mid_line_offset] ^= 0x10;
    assert_resume_matches(&flipped, GRID - 1);
}

#[test]
fn disk_full_kills_the_journal_softly_but_never_the_sweep() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    let path = temp_path("disk_full");
    // Room for the header plus roughly two rows, then the device is full.
    let writer = JournalWriter::create(&path, &wal_header(jobs.len()))
        .unwrap()
        .with_quota(4096);
    let sink = Arc::new(JournalSink::new(writer));
    let sweep = Sweep::new(Scale::Tiny)
        .with_journal(Arc::clone(&sink))
        .with_trace_cache(Arc::new(TraceCache::new()));
    let outcomes = sweep.run(jobs);

    // Every job still completed — journal loss degrades durability, not
    // results — and the loss is reported, not silent.
    assert_eq!(outcomes.len(), GRID);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    let lost = sink.lost().expect("quota must have killed the journal");
    assert!(lost.contains("quota"), "{lost}");
    assert!(sweep.degradation().journal_lost);

    // What made it to disk before the wall is still a valid journal.
    let rec = journal::read_journal(&std::fs::read(&path).unwrap());
    std::fs::remove_file(&path).ok();
    assert!(rec.header.is_some());
    assert!(rec.rows.len() < GRID);
}

#[test]
fn repeated_transients_descend_the_degradation_ladder_with_clean_results() {
    let cfg = SystemConfig::small();
    let clean = Sweep::new(Scale::Tiny).run(full_grid(&cfg));

    // Eight transient panics across the grid, all recovered by one retry:
    // enough to walk the ladder to the bottom (thresholds 2 / 4 / 6).
    let mut plan = FaultPlan::new();
    for job in [0, 3, 6, 9, 12, 15, 18, 21] {
        plan = plan.inject(job, Fault::TransientPanic { failures: 1 });
    }
    let sweep = Sweep::new(Scale::Tiny).retries(1).with_faults(plan);
    assert_eq!(sweep.degradation().level, DegradeLevel::Full);
    let outcomes = sweep.run(full_grid(&cfg));

    let degraded = sweep.degradation();
    assert_eq!(degraded.level, DegradeLevel::SingleJob);
    assert!(degraded.transient_failures >= 6);
    assert!(degraded.is_degraded());
    // Degradation sheds throughput, never correctness: every job
    // completed and every result matches the healthy run.
    assert_eq!(outcomes.len(), GRID);
    for (o, c) in outcomes.iter().zip(&clean) {
        assert_eq!(
            o.result.as_ref().unwrap(),
            c.result.as_ref().unwrap(),
            "{} diverged under degradation",
            o.job.label()
        );
    }
}

#[test]
fn seeded_chaos_storms_are_deterministic_end_to_end() {
    let cfg = SystemConfig::small();
    let plan = FaultPlan::seeded_chaos(0xC4A05, GRID, 6);
    let kills = plan
        .entries()
        .iter()
        .filter(|(_, f)| *f == Fault::WorkerKill)
        .count();
    let a = Sweep::new(Scale::Tiny)
        .retries(1)
        .with_faults(plan.clone())
        .run(full_grid(&cfg));
    let b = Sweep::new(Scale::Tiny)
        .retries(1)
        .with_faults(plan)
        .run(full_grid(&cfg));
    // Killed workers leave gaps (more on small pools, where a kill takes
    // the rest of the queue with it); everything that ran is reproducible.
    assert!(a.len() <= GRID - kills);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.job.label(), y.job.label());
        assert_eq!(x.result, y.result, "{}", x.job.label());
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(x.backoff, y.backoff);
    }
}
