//! Cross-crate integration: consistency invariants that must hold across
//! all four architectures for every workload.

use fusion_repro::core::runner::{run_system, SystemKind};
use fusion_repro::energy::Component;
use fusion_repro::types::SystemConfig;
use fusion_repro::workloads::{all_suites, build_suite, Scale, SuiteId};

const ALL_SYSTEMS: [SystemKind; 4] = [
    SystemKind::Scratch,
    SystemKind::Shared,
    SystemKind::Fusion,
    SystemKind::FusionDx,
];

#[test]
fn every_system_completes_every_suite() {
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        for kind in ALL_SYSTEMS {
            let res = run_system(kind, &wl, &SystemConfig::small()).unwrap();
            assert!(res.total_cycles > 0, "{id}/{kind}: zero cycles");
            assert!(res.cache_energy().value() > 0.0, "{id}/{kind}: zero energy");
            assert_eq!(res.phases.len(), wl.phases.len(), "{id}/{kind}");
        }
    }
}

#[test]
fn phase_cycles_partition_total() {
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        for kind in ALL_SYSTEMS {
            let res = run_system(kind, &wl, &SystemConfig::small()).unwrap();
            let sum: u64 = res.phases.iter().map(|p| p.cycles).sum();
            assert_eq!(
                sum, res.total_cycles,
                "{id}/{kind}: phase cycles don't partition the total"
            );
        }
    }
}

#[test]
fn simulations_are_deterministic() {
    for kind in ALL_SYSTEMS {
        let wl = build_suite(SuiteId::Susan, Scale::Tiny);
        let a = run_system(kind, &wl, &SystemConfig::small()).unwrap();
        let b = run_system(kind, &wl, &SystemConfig::small()).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles, "{kind}");
        assert_eq!(a.energy, b.energy, "{kind}");
        assert_eq!(a.tile, b.tile, "{kind}");
    }
}

#[test]
fn workload_builds_are_deterministic() {
    for id in all_suites() {
        let a = build_suite(id, Scale::Tiny);
        let b = build_suite(id, Scale::Tiny);
        assert_eq!(a, b, "{id}: non-deterministic trace");
    }
}

#[test]
fn compute_energy_is_system_independent() {
    // The datapath does the same work on every architecture; only the
    // memory system differs.
    let wl = build_suite(SuiteId::Filter, Scale::Tiny);
    let reference = run_system(SystemKind::Scratch, &wl, &SystemConfig::small())
        .unwrap()
        .energy
        .energy(Component::Compute);
    for kind in ALL_SYSTEMS {
        let e = run_system(kind, &wl, &SystemConfig::small())
            .unwrap()
            .energy
            .energy(Component::Compute);
        assert_eq!(e, reference, "{kind}: compute energy diverged");
    }
}

#[test]
fn memory_cold_misses_are_equal_across_systems() {
    // Every system starts cold and touches the same working set: DRAM
    // access counts may differ slightly (writeback ordering) but the
    // first-touch fills are identical, so counts must be within the
    // working set's block count of each other.
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let blocks = wl.working_set().value() / 64;
    let counts: Vec<u64> = ALL_SYSTEMS
        .iter()
        .map(|&k| {
            run_system(k, &wl, &SystemConfig::small())
                .unwrap()
                .energy
                .count(Component::Memory)
        })
        .collect();
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(
        max - min <= blocks,
        "memory traffic diverged: {counts:?} (working set {blocks} blocks)"
    );
}

#[test]
fn only_scratch_uses_dma_and_only_fusion_uses_the_tile() {
    let wl = build_suite(SuiteId::Fft, Scale::Tiny);
    for kind in ALL_SYSTEMS {
        let res = run_system(kind, &wl, &SystemConfig::small()).unwrap();
        match kind {
            SystemKind::Scratch => {
                assert!(res.dma_blocks > 0);
                assert!(res.tile.is_none());
                assert_eq!(res.ax_rmap_lookups, 0);
            }
            SystemKind::Shared => {
                assert_eq!(res.dma_blocks, 0);
                assert!(res.tile.is_none());
            }
            SystemKind::Fusion | SystemKind::FusionDx => {
                assert_eq!(res.dma_blocks, 0);
                assert!(res.tile.is_some());
            }
        }
    }
}

#[test]
fn fusion_dx_forwards_only_when_enabled() {
    let wl = build_suite(SuiteId::Fft, Scale::Tiny);
    let fu = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let dx = run_system(SystemKind::FusionDx, &wl, &SystemConfig::small()).unwrap();
    assert_eq!(fu.tile.unwrap().fwd_l0_to_l0, 0);
    assert!(dx.tile.unwrap().fwd_l0_to_l0 > 0);
    assert_eq!(fu.energy.count(Component::LinkL0xFwd), 0);
}

#[test]
fn large_config_runs_all_suites() {
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        let res = run_system(SystemKind::Fusion, &wl, &SystemConfig::large()).unwrap();
        assert!(res.total_cycles > 0, "{id} at LARGE config");
    }
}

#[test]
fn host_phases_cost_host_l1_energy() {
    // Every suite ends with a host phase; its accesses go through the
    // host L1, not the tile.
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        let res = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
        assert!(
            res.energy.count(Component::HostL1) > 0,
            "{id}: host phase produced no host-L1 accesses"
        );
    }
}
