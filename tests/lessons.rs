//! The eight "Lessons Learned" of the paper's evaluation (Section 5),
//! each pinned as an executable assertion so the qualitative claims stay
//! true as the simulator evolves.
//!
//! Small scale keeps CI fast while preserving every crossover; the Paper
//! scale numbers live in EXPERIMENTS.md.

use fusion_repro::core::runner::{run_system, SystemKind};
use fusion_repro::core::SimResult;
use fusion_repro::energy::Component;
use fusion_repro::types::{SystemConfig, WritePolicy};
use fusion_repro::workloads::{build_suite, Scale, SuiteId};

fn run(kind: SystemKind, id: SuiteId) -> SimResult {
    run_system(kind, &build_suite(id, Scale::Small), &SystemConfig::small()).unwrap()
}

#[test]
fn lesson1_shared_l1x_beats_scratch_on_dma_bound_suites() {
    // "FFT, DISP., TRACK. ... spend a significant amount of time in DMA
    // transfers and the SHARED system outperforms the SCRATCH system."
    for id in [SuiteId::Fft, SuiteId::Disparity] {
        let sc = run(SystemKind::Scratch, id);
        let sh = run(SystemKind::Shared, id);
        assert!(
            sc.dma_time_fraction() > 0.4,
            "{id}: SCRATCH DMA fraction {:.2} too low for the lesson",
            sc.dma_time_fraction()
        );
        assert!(
            sh.total_cycles < sc.total_cycles,
            "{id}: SHARED {} !< SCRATCH {}",
            sh.total_cycles,
            sc.total_cycles
        );
    }
    // "...the SHARED system degrades performance" where the working set
    // is small and SCRATCH captures the locality.
    for id in [SuiteId::Adpcm, SuiteId::Susan, SuiteId::Filter] {
        let sc = run(SystemKind::Scratch, id);
        let sh = run(SystemKind::Shared, id);
        assert!(
            sh.total_cycles > sc.total_cycles,
            "{id}: SHARED should degrade vs SCRATCH ({} vs {})",
            sh.total_cycles,
            sc.total_cycles
        );
    }
}

#[test]
fn lesson2_private_l0x_recovers_shared_degradation() {
    // "The FUSION system is able to capture the spatial locality for
    // SUSAN, FILT. and ADPCM which is the cause of degradation in the
    // SHARED system."
    for id in [SuiteId::Adpcm, SuiteId::Susan, SuiteId::Filter] {
        let sh = run(SystemKind::Shared, id);
        let fu = run(SystemKind::Fusion, id);
        assert!(
            fu.total_cycles < sh.total_cycles,
            "{id}: FUSION {} !< SHARED {}",
            fu.total_cycles,
            sh.total_cycles
        );
    }
}

#[test]
fn lesson3_l0x_filters_l1x_accesses_and_saves_energy() {
    // "...introducing a 4K L0X ... filters out 83% and 80% of the accesses
    // to the L1X for FFT and DISP."
    for (id, min_filter) in [(SuiteId::Fft, 0.75), (SuiteId::Disparity, 0.75)] {
        let fu = run(SystemKind::Fusion, id);
        let tile = fu.tile.expect("fusion tile stats");
        let filtered = 1.0 - tile.msgs_l0_to_l1 as f64 / tile.l0_accesses.max(1) as f64;
        assert!(
            filtered > min_filter,
            "{id}: L0X filtered only {:.0}% of L1X traffic",
            filtered * 100.0
        );
        // And the energy per filtered access is lower than the L1X's.
        let sh = run(SystemKind::Shared, id);
        assert!(
            fu.cache_energy() < sh.cache_energy(),
            "{id}: FUSION energy {} !< SHARED {}",
            fu.cache_energy(),
            sh.cache_energy()
        );
    }
}

#[test]
fn lesson4_coherence_messages_cost_fusion_energy_on_thrashy_suites() {
    // "However these gains are lost to repeated thrashing ... FUSION
    // increases energy consumption" for HIST/SUSAN/FILT-class suites:
    // FUSION's cache-hierarchy energy exceeds SCRATCH's there.
    for id in [SuiteId::Susan, SuiteId::Filter, SuiteId::Histogram] {
        let sc = run(SystemKind::Scratch, id);
        let fu = run(SystemKind::Fusion, id);
        assert!(
            fu.cache_energy() > sc.cache_energy(),
            "{id}: expected FUSION to pay an energy penalty ({} vs {})",
            fu.cache_energy(),
            sc.cache_energy()
        );
        // ...while still recovering most of the performance (the paper
        // reports a simultaneous performance improvement).
        let sh = run(SystemKind::Shared, id);
        assert!(
            fu.total_cycles < sh.total_cycles,
            "{id}: FUSION slower than SHARED"
        );
    }
    // But on sharing-heavy suites FUSION *saves* energy vs SCRATCH.
    for id in [SuiteId::Fft, SuiteId::Tracking] {
        let sc = run(SystemKind::Scratch, id);
        let fu = run(SystemKind::Fusion, id);
        assert!(
            fu.cache_energy() < sc.cache_energy(),
            "{id}: FUSION must save energy ({} vs {})",
            fu.cache_energy(),
            sc.cache_energy()
        );
    }
}

#[test]
fn lesson5_write_through_is_expensive() {
    // Table 4: write-through multiplies AXC-L1X bandwidth.
    for id in [SuiteId::Adpcm, SuiteId::Histogram] {
        let wl = build_suite(id, Scale::Small);
        let wb = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
        let wt = run_system(
            SystemKind::Fusion,
            &wl,
            &SystemConfig::small().with_write_policy(WritePolicy::WriteThrough),
        )
        .unwrap();
        let wb_flits = wb.traffic().flits_axc_l1x.value();
        let wt_flits = wt.traffic().flits_axc_l1x.value();
        assert!(
            wt_flits > wb_flits,
            "{id}: write-through {wt_flits} flits !> write-back {wb_flits}"
        );
    }
}

#[test]
fn lesson6_dx_forwarding_saves_link_energy_on_fft() {
    // Table 5: FFT benefits from producer->consumer forwarding.
    let fu = run(SystemKind::Fusion, SuiteId::Fft);
    let dx = run(SystemKind::FusionDx, SuiteId::Fft);
    let fwd = dx.tile.expect("dx tile").fwd_l0_to_l0;
    assert!(fwd > 0, "FUSION-Dx forwarded nothing on FFT");
    let link = |r: &SimResult| {
        r.energy.energy(Component::LinkAxcL1xMsg).value()
            + r.energy.energy(Component::LinkAxcL1xData).value()
            + r.energy.energy(Component::LinkL0xFwd).value()
    };
    assert!(
        link(&dx) < link(&fu),
        "Dx AXC-link energy {} !< FUSION {}",
        link(&dx),
        link(&fu)
    );
    // And Dx stays within a few percent of FUSION's performance.
    assert!(dx.total_cycles <= fu.total_cycles + fu.total_cycles / 20);
}

#[test]
fn lesson7_larger_caches_are_not_better_for_small_working_sets() {
    // Figure 7: ADPCM/SUSAN/FILT (working sets < 30 kB) pay the LARGE
    // configuration's higher access energy for nothing.
    for id in [SuiteId::Adpcm, SuiteId::Susan, SuiteId::Filter] {
        let wl = build_suite(id, Scale::Small);
        let small = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
        let large = run_system(SystemKind::Fusion, &wl, &SystemConfig::large()).unwrap();
        assert!(
            large.cache_energy() > small.cache_energy(),
            "{id}: LARGE config should cost more energy ({} vs {})",
            large.cache_energy(),
            small.cache_energy()
        );
    }
}

#[test]
fn lesson8_translation_is_off_the_critical_path() {
    // Table 6: the AX-TLB only sees L1X-miss traffic, so its lookups are
    // a tiny fraction of the accelerator's accesses; its energy is < 1%.
    let fu = run(SystemKind::Fusion, SuiteId::Fft);
    let tile = fu.tile.expect("tile stats");
    assert!(
        fu.ax_tlb_lookups < tile.l0_accesses / 20,
        "AX-TLB lookups {} not filtered (accesses {})",
        fu.ax_tlb_lookups,
        tile.l0_accesses
    );
    let translation = fu.energy.energy(Component::Tlb) + fu.energy.energy(Component::Rmap);
    assert!(
        translation.value() < 0.01 * fu.cache_energy().value(),
        "translation energy {} exceeds 1% of {}",
        translation,
        fu.cache_energy()
    );
    // The SHARED design pays translation on every access instead.
    let sh = run(SystemKind::Shared, SuiteId::Fft);
    assert!(sh.ax_tlb_lookups > fu.ax_tlb_lookups * 10);
}
