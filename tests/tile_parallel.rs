//! Tile-parallel replay determinism (DESIGN.md §12).
//!
//! The multi-tile system replays every tile's phase against a private
//! host copy between arbitration points and commits the host-interaction
//! logs in canonical (tile index, event sequence) order. Both the
//! sequential and the parallel path execute the identical algorithm, so
//! the thread count must change *nothing* — proven here as byte-identical
//! stats JSON across 1, 2 and 4 tile workers, and exercised under the
//! watchdog controls (a cancellation must surface as a typed
//! `SimError::Timeout` from every path, never as a worker panic).

use std::sync::atomic::{AtomicBool, Ordering};

use fusion_core::systems::MultiTileSystem;
use fusion_core::RunControl;
use fusion_types::error::{SimError, TimeoutKind};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale, SuiteId};

fn mixed_workloads(scale: Scale) -> Vec<fusion_accel::Workload> {
    [
        SuiteId::Adpcm,
        SuiteId::Susan,
        SuiteId::Filter,
        SuiteId::Tracking,
    ]
    .into_iter()
    .map(|s| build_suite(s, scale))
    .collect()
}

#[test]
fn parallel_tiles_match_sequential_tiles_byte_identically() {
    let wls = mixed_workloads(Scale::Tiny);
    let cfg = SystemConfig::small();
    let sequential = MultiTileSystem::new(&cfg).run_parallel(&wls, 1);
    for threads in [2, 3, 4, 8] {
        let parallel = MultiTileSystem::new(&cfg).run_parallel(&wls, threads);
        assert_eq!(parallel.len(), sequential.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(
                s.to_json(),
                p.to_json(),
                "tile-parallel replay diverged at {threads} threads for {}",
                s.workload
            );
        }
    }
}

#[test]
fn parallel_tiles_deterministic_across_repeat_runs() {
    // Same thread count, repeated runs: thread scheduling must never
    // leak into the stats.
    let wls = mixed_workloads(Scale::Tiny);
    let cfg = SystemConfig::small();
    let first = MultiTileSystem::new(&cfg).run_parallel(&wls, 4);
    for _ in 0..3 {
        let again = MultiTileSystem::new(&cfg).run_parallel(&wls, 4);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }
}

#[test]
fn single_workload_parallel_path_matches_sequential() {
    // Degenerate parallelism: one tile, many workers — the chunked
    // dispatch must not disturb anything.
    let wls = vec![build_suite(SuiteId::Fft, Scale::Tiny)];
    let cfg = SystemConfig::small();
    let seq = MultiTileSystem::new(&cfg).run_parallel(&wls, 1);
    let par = MultiTileSystem::new(&cfg).run_parallel(&wls, 4);
    assert_eq!(seq[0].to_json(), par[0].to_json());
}

#[test]
fn cancel_mid_run_reports_timeout_on_both_paths() {
    // Satellite: a wall-clock cancellation raised while tile workers are
    // replaying must stop all of them at the next arbitration point and
    // surface as the typed Timeout — never as a worker panic
    // (JobPanicked is reserved for real bugs).
    let wls = mixed_workloads(Scale::Tiny);
    let cfg = SystemConfig::small();
    for threads in [1, 4] {
        let cancel = AtomicBool::new(true);
        let ctl = RunControl {
            label: "mt-cancel",
            max_sim_cycles: None,
            cancel: Some(&cancel),
            wall_deadline_ms: 7,
        };
        let err = MultiTileSystem::new(&cfg)
            .run_guarded(&wls, &ctl, threads)
            .expect_err("armed cancellation must abort the run");
        match err {
            SimError::Timeout { job, kind, limit } => {
                assert_eq!(job, "mt-cancel");
                assert_eq!(kind, TimeoutKind::WallClock);
                assert_eq!(limit, 7);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(cancel.load(Ordering::Relaxed));
    }
}

#[test]
fn sim_cycle_budget_reports_timeout_on_both_paths() {
    let wls = mixed_workloads(Scale::Tiny);
    let cfg = SystemConfig::small();
    for threads in [1, 4] {
        let ctl = RunControl {
            label: "mt-budget",
            max_sim_cycles: Some(1),
            cancel: None,
            wall_deadline_ms: 0,
        };
        let err = MultiTileSystem::new(&cfg)
            .run_guarded(&wls, &ctl, threads)
            .expect_err("a 1-cycle budget must abort the run");
        assert!(
            matches!(
                err,
                SimError::Timeout {
                    kind: TimeoutKind::SimCycleBudget,
                    limit: 1,
                    ..
                }
            ),
            "expected SimCycleBudget timeout, got {err:?}"
        );
    }
}

#[test]
fn guarded_run_without_watchdogs_completes() {
    let wls = mixed_workloads(Scale::Tiny);
    let cfg = SystemConfig::small();
    let results = MultiTileSystem::new(&cfg)
        .run_guarded(&wls, &RunControl::default(), 2)
        .expect("unguarded run cannot time out");
    assert_eq!(results.len(), wls.len());
}
