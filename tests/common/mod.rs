//! Shared test utilities: a small deterministic PRNG replacing the
//! `proptest` dependency (the build must work with no network access, so
//! the property tests drive the same random exploration from a seeded
//! splitmix64 generator instead).

#![allow(dead_code)] // each integration-test binary uses a subset

/// Deterministic splitmix64 generator.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a fixed seed; the same seed always yields
    /// the same sequence, so failures are reproducible.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `u16` in `[lo, hi)`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64(lo as u64, hi as u64) as u16
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(lo as u64, hi as u64) as u8
    }

    /// Fair coin flip.
    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Random ASCII identifier of length `[1, max_len]` drawn from
    /// `charset`.
    pub fn ident(&mut self, charset: &[u8], max_len: usize) -> String {
        let len = self.range_usize(1, max_len + 1);
        (0..len)
            .map(|_| charset[self.range_usize(0, charset.len())] as char)
            .collect()
    }
}

#[test]
fn rng_is_deterministic_and_in_range() {
    let mut a = Rng::new(42);
    let mut b = Rng::new(42);
    for _ in 0..100 {
        let (x, y) = (a.next_u64(), b.next_u64());
        assert_eq!(x, y);
    }
    let mut r = Rng::new(7);
    for _ in 0..1000 {
        let v = r.range_u64(5, 17);
        assert!((5..17).contains(&v));
    }
}
