//! Property tests for the timing engines, the DMA controller and the
//! trace serialization format.

use proptest::prelude::*;

use fusion_repro::accel::io::{decode_workload, encode_workload};
use fusion_repro::accel::ooo::{run_host_phase, OooParams};
use fusion_repro::accel::{run_phase, MemRef, OpCounts, Phase, Workload};
use fusion_repro::dma::{DmaController, DmaDirection};
use fusion_repro::mem::BankedTiming;
use fusion_repro::types::ids::ExecUnit;
use fusion_repro::types::{AccessKind, AxcId, BlockAddr, Cycle, LinkConfig, Pid, VirtAddr};

fn memref_strategy() -> impl Strategy<Value = MemRef> {
    (0u64..(1 << 20), 1u8..=64, any::<bool>(), 0u16..50).prop_map(|(addr, size, write, gap)| {
        MemRef {
            addr: VirtAddr::new(addr),
            size,
            kind: if write {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            gap,
        }
    })
}

proptest! {
    /// The accelerator issue engine finishes no earlier than its start and
    /// no earlier than the last memory completion; issue order respects
    /// program order.
    #[test]
    fn run_phase_end_bounds(
        refs in prop::collection::vec(memref_strategy(), 0..100),
        mlp in 1usize..8,
        latency in 1u64..200,
    ) {
        let mut issues: Vec<Cycle> = Vec::new();
        let mut max_done = Cycle::ZERO;
        let t = run_phase(&refs, mlp, Cycle::new(10), |_r, now| {
            issues.push(now);
            let done = now + latency;
            max_done = max_done.max(done);
            done
        });
        prop_assert!(issues.windows(2).all(|w| w[0] <= w[1]), "issue order violated");
        prop_assert_eq!(t.issued, refs.len() as u64);
        prop_assert!(t.end >= Cycle::new(10));
        prop_assert!(t.end >= max_done);
    }

    /// The OOO host engine has the same bounds and never lets completions
    /// precede issues.
    #[test]
    fn ooo_end_bounds(
        refs in prop::collection::vec(memref_strategy(), 0..100),
        latency in 1u64..200,
    ) {
        let mut max_done = Cycle::ZERO;
        let t = run_host_phase(&refs, OooParams::default(), Cycle::new(5), |_r, now| {
            let done = now + latency;
            max_done = max_done.max(done);
            done
        });
        prop_assert_eq!(t.issued, refs.len() as u64);
        prop_assert!(t.end >= Cycle::new(5));
        prop_assert!(t.end >= max_done);
    }

    /// A tighter load queue can only slow a load-only stream down.
    #[test]
    fn ooo_smaller_lq_is_never_faster(
        n in 1usize..60,
        latency in 1u64..100,
    ) {
        let refs: Vec<MemRef> = (0..n)
            .map(|i| MemRef {
                addr: VirtAddr::new(i as u64 * 64),
                size: 8,
                kind: AccessKind::Load,
                gap: 0,
            })
            .collect();
        let wide = OooParams { load_queue: 32, ..OooParams::default() };
        let narrow = OooParams { load_queue: 2, ..OooParams::default() };
        let tw = run_host_phase(&refs, wide, Cycle::ZERO, |_r, now| now + latency);
        let tn = run_host_phase(&refs, narrow, Cycle::ZERO, |_r, now| now + latency);
        prop_assert!(tn.end >= tw.end, "narrow LQ finished earlier");
    }

    /// Trace encode/decode is a lossless roundtrip for arbitrary workloads.
    #[test]
    fn trace_io_roundtrip(
        name in "[a-zA-Z0-9_.]{1,16}",
        pid in 0u32..100,
        phases in prop::collection::vec(
            (
                "[a-z0-9]{1,12}",
                prop::option::of(0u16..8),
                1usize..6,
                1u32..5000,
                prop::collection::vec(memref_strategy(), 0..50),
                0u64..1000,
                0u64..1000,
            ),
            0..6,
        ),
    ) {
        let wl = Workload {
            name,
            pid: Pid::new(pid),
            phases: phases
                .into_iter()
                .map(|(pname, axc, mlp, lease, refs, int_ops, fp_ops)| Phase {
                    name: pname,
                    unit: match axc {
                        Some(id) => ExecUnit::Axc(AxcId::new(id)),
                        None => ExecUnit::Host,
                    },
                    refs,
                    ops: OpCounts { int_ops, fp_ops },
                    mlp,
                    lease,
                })
                .collect(),
        };
        let decoded = decode_workload(&encode_workload(&wl)).unwrap();
        prop_assert_eq!(decoded, wl);
    }

    /// DMA transfers complete monotonically and report exact block counts.
    #[test]
    fn dma_transfer_bounds(
        blocks in prop::collection::vec(0u64..1000, 0..60),
        start in 0u64..10_000,
        llc_latency in 1u64..300,
    ) {
        let link = LinkConfig { pj_per_byte: 6.0, latency: 8, bytes_per_cycle: 8 };
        let mut dma = DmaController::new(link);
        let addrs: Vec<BlockAddr> = blocks.iter().map(|&b| BlockAddr::from_index(b)).collect();
        let t = dma.transfer(&addrs, DmaDirection::In, Cycle::new(start), |_b, at| {
            at + llc_latency
        });
        prop_assert!(t.done_at >= Cycle::new(start));
        prop_assert_eq!(t.blocks, addrs.len());
        if !addrs.is_empty() {
            // At least the link serialization time per block.
            prop_assert!(t.done_at.value() >= start + addrs.len() as u64 * 16);
        }
        prop_assert_eq!(dma.blocks_in(), addrs.len() as u64);
    }

    /// Banked timing never schedules two same-bank accesses concurrently
    /// and never goes backwards.
    #[test]
    fn banked_timing_serializes(
        accesses in prop::collection::vec((0u64..64, 0u64..100), 1..100),
    ) {
        let mut banks = BankedTiming::new(8, 3);
        let mut per_bank_last: std::collections::HashMap<u64, Cycle> = std::collections::HashMap::new();
        let mut now = Cycle::ZERO;
        for (block, dt) in accesses {
            now += dt;
            let start = banks.issue(BlockAddr::from_index(block), now);
            prop_assert!(start >= now);
            let bank = block % 8;
            if let Some(&prev) = per_bank_last.get(&bank) {
                prop_assert!(start.value() >= prev.value() + 3, "bank occupancy violated");
            }
            per_bank_last.insert(bank, start);
        }
    }
}
