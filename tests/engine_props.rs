//! Property tests for the timing engines, the DMA controller and the
//! trace serialization format, driven by the seeded deterministic
//! generator in `common::Rng`.

mod common;

use common::Rng;
use fusion_repro::accel::io::{decode_workload, encode_workload};
use fusion_repro::accel::ooo::{run_host_phase, OooParams};
use fusion_repro::accel::{run_phase, MemRef, OpCounts, Phase, Workload};
use fusion_repro::dma::{DmaController, DmaDirection};
use fusion_repro::mem::BankedTiming;
use fusion_repro::types::ids::ExecUnit;
use fusion_repro::types::{AccessKind, AxcId, BlockAddr, Cycle, LinkConfig, Pid, VirtAddr};

/// Random sequences explored per property.
const CASES: u64 = 64;

fn memref(rng: &mut Rng) -> MemRef {
    MemRef {
        addr: VirtAddr::new(rng.range_u64(0, 1 << 20)),
        size: rng.range_u8(1, 65),
        kind: if rng.chance() {
            AccessKind::Store
        } else {
            AccessKind::Load
        },
        gap: rng.range_u16(0, 50),
    }
}

fn memrefs(rng: &mut Rng, max: usize) -> Vec<MemRef> {
    let len = rng.range_usize(0, max);
    (0..len).map(|_| memref(rng)).collect()
}

/// The accelerator issue engine finishes no earlier than its start and
/// no earlier than the last memory completion; issue order respects
/// program order.
#[test]
fn run_phase_end_bounds() {
    let mut rng = Rng::new(0x9A5E);
    for _ in 0..CASES {
        let refs = memrefs(&mut rng, 100);
        let mlp = rng.range_usize(1, 8);
        let latency = rng.range_u64(1, 200);
        let mut issues: Vec<Cycle> = Vec::new();
        let mut max_done = Cycle::ZERO;
        let t = run_phase(&refs, mlp, Cycle::new(10), |_r, now| {
            issues.push(now);
            let done = now + latency;
            max_done = max_done.max(done);
            done
        });
        assert!(
            issues.windows(2).all(|w| w[0] <= w[1]),
            "issue order violated"
        );
        assert_eq!(t.issued, refs.len() as u64);
        assert!(t.end >= Cycle::new(10));
        assert!(t.end >= max_done);
    }
}

/// The OOO host engine has the same bounds and never lets completions
/// precede issues.
#[test]
fn ooo_end_bounds() {
    let mut rng = Rng::new(0x0005);
    for _ in 0..CASES {
        let refs = memrefs(&mut rng, 100);
        let latency = rng.range_u64(1, 200);
        let mut max_done = Cycle::ZERO;
        let t = run_host_phase(&refs, OooParams::default(), Cycle::new(5), |_r, now| {
            let done = now + latency;
            max_done = max_done.max(done);
            done
        });
        assert_eq!(t.issued, refs.len() as u64);
        assert!(t.end >= Cycle::new(5));
        assert!(t.end >= max_done);
    }
}

/// A tighter load queue can only slow a load-only stream down.
#[test]
fn ooo_smaller_lq_is_never_faster() {
    let mut rng = Rng::new(0x10AD);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 60);
        let latency = rng.range_u64(1, 100);
        let refs: Vec<MemRef> = (0..n)
            .map(|i| MemRef {
                addr: VirtAddr::new(i as u64 * 64),
                size: 8,
                kind: AccessKind::Load,
                gap: 0,
            })
            .collect();
        let wide = OooParams {
            load_queue: 32,
            ..OooParams::default()
        };
        let narrow = OooParams {
            load_queue: 2,
            ..OooParams::default()
        };
        let tw = run_host_phase(&refs, wide, Cycle::ZERO, |_r, now| now + latency);
        let tn = run_host_phase(&refs, narrow, Cycle::ZERO, |_r, now| now + latency);
        assert!(tn.end >= tw.end, "narrow LQ finished earlier");
    }
}

/// Trace encode/decode is a lossless roundtrip for arbitrary workloads.
#[test]
fn trace_io_roundtrip() {
    const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
    const PHASE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let mut rng = Rng::new(0x7ACE);
    for _ in 0..CASES {
        let phase_count = rng.range_usize(0, 6);
        let phases = (0..phase_count)
            .map(|_| {
                let pname = rng.ident(PHASE_CHARS, 12);
                let axc = if rng.chance() {
                    Some(rng.range_u16(0, 8))
                } else {
                    None
                };
                Phase {
                    name: pname,
                    unit: match axc {
                        Some(id) => ExecUnit::Axc(AxcId::new(id)),
                        None => ExecUnit::Host,
                    },
                    refs: memrefs(&mut rng, 50),
                    ops: OpCounts {
                        int_ops: rng.range_u64(0, 1000),
                        fp_ops: rng.range_u64(0, 1000),
                    },
                    mlp: rng.range_usize(1, 6),
                    lease: rng.range_u32(1, 5000),
                }
            })
            .collect();
        let wl = Workload {
            name: rng.ident(NAME_CHARS, 16),
            pid: Pid::new(rng.range_u32(0, 100)),
            phases,
        };
        let decoded = decode_workload(&encode_workload(&wl)).unwrap();
        assert_eq!(decoded, wl);
    }
}

/// DMA transfers complete monotonically and report exact block counts.
#[test]
fn dma_transfer_bounds() {
    let mut rng = Rng::new(0xD4A);
    for _ in 0..CASES {
        let blocks: Vec<u64> = {
            let len = rng.range_usize(0, 60);
            (0..len).map(|_| rng.range_u64(0, 1000)).collect()
        };
        let start = rng.range_u64(0, 10_000);
        let llc_latency = rng.range_u64(1, 300);
        let link = LinkConfig {
            pj_per_byte: 6.0,
            latency: 8,
            bytes_per_cycle: 8,
        };
        let mut dma = DmaController::new(link);
        let addrs: Vec<BlockAddr> = blocks.iter().map(|&b| BlockAddr::from_index(b)).collect();
        let t = dma.transfer(&addrs, DmaDirection::In, Cycle::new(start), |_b, at| {
            at + llc_latency
        });
        assert!(t.done_at >= Cycle::new(start));
        assert_eq!(t.blocks, addrs.len());
        if !addrs.is_empty() {
            // At least the link serialization time per block.
            assert!(t.done_at.value() >= start + addrs.len() as u64 * 16);
        }
        assert_eq!(dma.blocks_in(), addrs.len() as u64);
    }
}

/// Banked timing never schedules two same-bank accesses concurrently
/// and never goes backwards.
#[test]
fn banked_timing_serializes() {
    let mut rng = Rng::new(0xBA2C);
    for _ in 0..CASES {
        let accesses: Vec<(u64, u64)> = {
            let len = rng.range_usize(1, 100);
            (0..len)
                .map(|_| (rng.range_u64(0, 64), rng.range_u64(0, 100)))
                .collect()
        };
        let mut banks = BankedTiming::new(8, 3);
        let mut per_bank_last: std::collections::HashMap<u64, Cycle> =
            std::collections::HashMap::new();
        let mut now = Cycle::ZERO;
        for (block, dt) in accesses {
            now += dt;
            let start = banks.issue(BlockAddr::from_index(block), now);
            assert!(start >= now);
            let bank = block % 8;
            if let Some(&prev) = per_bank_last.get(&bank) {
                assert!(start.value() >= prev.value() + 3, "bank occupancy violated");
            }
            per_bank_last.insert(bank, start);
        }
    }
}
