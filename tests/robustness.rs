//! Robustness and rare-path coverage: inclusive-L2 recalls into the tile,
//! trace-replay equivalence, and decoder fuzzing (seeded deterministic
//! random input via `common::Rng`).

mod common;

use common::Rng;
use fusion_repro::accel::io::{decode_workload, encode_workload, read_workload, write_workload};
use fusion_repro::core::runner::{run_system, SystemKind};
use fusion_repro::types::{CacheGeometry, SystemConfig};
use fusion_repro::workloads::{all_suites, build_suite, Scale, SuiteId};

/// A configuration whose L2 is barely larger than the L1X, forcing
/// inclusive-L2 evictions that recall blocks out of the accelerator tile —
/// a path ordinary runs never exercise (the 4 MB L2 swallows everything).
fn tiny_l2_config() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.l2 = CacheGeometry {
        capacity_bytes: 16 * 1024,
        ways: 2,
        banks: 2,
        latency: 20,
    };
    cfg
}

#[test]
fn inclusive_l2_recalls_do_not_break_any_system() {
    for id in [SuiteId::Filter, SuiteId::Histogram] {
        let wl = build_suite(id, Scale::Tiny);
        for kind in [
            SystemKind::Scratch,
            SystemKind::Shared,
            SystemKind::Fusion,
            SystemKind::FusionDx,
        ] {
            let res = run_system(kind, &wl, &tiny_l2_config()).unwrap();
            assert!(res.total_cycles > 0, "{id}/{kind} under a tiny L2");
        }
    }
}

#[test]
fn tiny_l2_costs_more_memory_traffic() {
    let wl = build_suite(SuiteId::Histogram, Scale::Tiny);
    let big = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let tiny = run_system(SystemKind::Fusion, &wl, &tiny_l2_config()).unwrap();
    assert!(
        tiny.energy.count(fusion_repro::energy::Component::Memory)
            > big.energy.count(fusion_repro::energy::Component::Memory),
        "a 16 kB L2 must spill to DRAM more often"
    );
    // And the simulation still attributes every cycle.
    let sum: u64 = tiny.phases.iter().map(|p| p.cycles).sum();
    assert_eq!(sum, tiny.total_cycles);
}

#[test]
fn replayed_traces_simulate_identically() {
    // The paper's workflow: materialize the trace once, replay everywhere.
    // Replaying must give bit-identical results to the fresh build.
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        let mut file = Vec::new();
        write_workload(&wl, &mut file).unwrap();
        let replayed = read_workload(file.as_slice()).unwrap();
        assert_eq!(wl, replayed, "{id}: lossy trace roundtrip");
        let a = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
        let b = run_system(SystemKind::Fusion, &replayed, &SystemConfig::small()).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles, "{id}");
        assert_eq!(a.energy, b.energy, "{id}");
    }
}

#[test]
fn prefetch_and_renewal_compose() {
    // Both extensions on together: still deterministic, still correct
    // accounting, and no slower than the plain configuration on a
    // streaming suite.
    let wl = build_suite(SuiteId::Tracking, Scale::Tiny);
    let plain = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let cfg = SystemConfig::small()
        .with_lease_renewal(true)
        .with_l1x_prefetch(4);
    let both = run_system(SystemKind::Fusion, &wl, &cfg).unwrap();
    assert!(both.total_cycles <= plain.total_cycles);
    let t = both.tile.unwrap();
    assert_eq!(t.l0_hits + t.l0_misses, t.l0_accesses);
}

/// The trace decoder never panics on arbitrary bytes — it returns a
/// structured error instead.
#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Rng::new(0xF422);
    for _ in 0..256 {
        let len = rng.range_usize(0, 512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.range_u8(0, 255)).collect();
        let _ = decode_workload(&bytes);
    }
}

/// Bit-flipping a valid trace never panics the decoder, and decoding
/// either fails cleanly or yields *some* structurally valid workload.
#[test]
fn decoder_survives_corruption() {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let pristine = encode_workload(&wl);
    let mut rng = Rng::new(0xC0A7);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        let i = rng.range_usize(0, bytes.len());
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        if let Ok(decoded) = decode_workload(&bytes) {
            // Whatever decoded must at least be internally consistent.
            for p in &decoded.phases {
                assert!(p.mlp >= 1);
            }
        }
    }
}

/// FNV-1a matching the trace format's trailing checksum, so fuzzed
/// structural damage reaches the parser instead of dying at the
/// checksum gate.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len() - 8;
    let mut h = 0xcbf29ce484222325u64;
    for &b in &bytes[6..n] {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    bytes[n..].copy_from_slice(&h.to_le_bytes());
}

/// Corruption with a *valid* checksum — the adversarial case for the
/// parser's own bounds checks (length-field overflow, truncated strings,
/// out-of-range sizes). Every outcome must be a clean `Result`, never a
/// panic or a runaway allocation.
#[test]
fn decoder_survives_resealed_structural_corruption() {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let pristine = encode_workload(&wl);
    let mut rng = Rng::new(0x5EA1);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        // Damage the payload (past magic+version, before the checksum)
        // and recompute the seal so the parser sees the damage.
        let i = rng.range_usize(6, bytes.len() - 8);
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        reseal(&mut bytes);
        if let Ok(decoded) = decode_workload(&bytes) {
            for p in &decoded.phases {
                assert!(p.mlp >= 1);
                assert!(p.refs.iter().all(|r| r.size >= 1));
            }
        }
    }
    // Resealed truncation: cut the payload short and seal what remains
    // (strictly inside the payload, so the result is genuinely damaged).
    for _ in 0..64 {
        let keep = rng.range_usize(14, pristine.len() - 8);
        let mut bytes = pristine[..keep].to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        reseal(&mut bytes);
        assert!(
            decode_workload(&bytes).is_err(),
            "truncated-to-{keep} trace was accepted"
        );
    }
}
