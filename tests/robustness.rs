//! Robustness and rare-path coverage: inclusive-L2 recalls into the tile,
//! trace-replay equivalence, and decoder fuzzing (seeded deterministic
//! random input via `common::Rng`).

mod common;

use common::Rng;
use fusion_repro::accel::io::{decode_workload, encode_workload, read_workload, write_workload};
use fusion_repro::core::runner::{run_system, SystemKind};
use fusion_repro::types::{CacheGeometry, SystemConfig};
use fusion_repro::workloads::{all_suites, build_suite, Scale, SuiteId};

/// A configuration whose L2 is barely larger than the L1X, forcing
/// inclusive-L2 evictions that recall blocks out of the accelerator tile —
/// a path ordinary runs never exercise (the 4 MB L2 swallows everything).
fn tiny_l2_config() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.l2 = CacheGeometry {
        capacity_bytes: 16 * 1024,
        ways: 2,
        banks: 2,
        latency: 20,
    };
    cfg
}

#[test]
fn inclusive_l2_recalls_do_not_break_any_system() {
    for id in [SuiteId::Filter, SuiteId::Histogram] {
        let wl = build_suite(id, Scale::Tiny);
        for kind in [
            SystemKind::Scratch,
            SystemKind::Shared,
            SystemKind::Fusion,
            SystemKind::FusionDx,
        ] {
            let res = run_system(kind, &wl, &tiny_l2_config());
            assert!(res.total_cycles > 0, "{id}/{kind} under a tiny L2");
        }
    }
}

#[test]
fn tiny_l2_costs_more_memory_traffic() {
    let wl = build_suite(SuiteId::Histogram, Scale::Tiny);
    let big = run_system(SystemKind::Fusion, &wl, &SystemConfig::small());
    let tiny = run_system(SystemKind::Fusion, &wl, &tiny_l2_config());
    assert!(
        tiny.energy.count(fusion_repro::energy::Component::Memory)
            > big.energy.count(fusion_repro::energy::Component::Memory),
        "a 16 kB L2 must spill to DRAM more often"
    );
    // And the simulation still attributes every cycle.
    let sum: u64 = tiny.phases.iter().map(|p| p.cycles).sum();
    assert_eq!(sum, tiny.total_cycles);
}

#[test]
fn replayed_traces_simulate_identically() {
    // The paper's workflow: materialize the trace once, replay everywhere.
    // Replaying must give bit-identical results to the fresh build.
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        let mut file = Vec::new();
        write_workload(&wl, &mut file).unwrap();
        let replayed = read_workload(file.as_slice()).unwrap();
        assert_eq!(wl, replayed, "{id}: lossy trace roundtrip");
        let a = run_system(SystemKind::Fusion, &wl, &SystemConfig::small());
        let b = run_system(SystemKind::Fusion, &replayed, &SystemConfig::small());
        assert_eq!(a.total_cycles, b.total_cycles, "{id}");
        assert_eq!(a.energy, b.energy, "{id}");
    }
}

#[test]
fn prefetch_and_renewal_compose() {
    // Both extensions on together: still deterministic, still correct
    // accounting, and no slower than the plain configuration on a
    // streaming suite.
    let wl = build_suite(SuiteId::Tracking, Scale::Tiny);
    let plain = run_system(SystemKind::Fusion, &wl, &SystemConfig::small());
    let cfg = SystemConfig::small()
        .with_lease_renewal(true)
        .with_l1x_prefetch(4);
    let both = run_system(SystemKind::Fusion, &wl, &cfg);
    assert!(both.total_cycles <= plain.total_cycles);
    let t = both.tile.unwrap();
    assert_eq!(t.l0_hits + t.l0_misses, t.l0_accesses);
}

/// The trace decoder never panics on arbitrary bytes — it returns a
/// structured error instead.
#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Rng::new(0xF422);
    for _ in 0..256 {
        let len = rng.range_usize(0, 512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.range_u8(0, 255)).collect();
        let _ = decode_workload(&bytes);
    }
}

/// Bit-flipping a valid trace never panics the decoder, and decoding
/// either fails cleanly or yields *some* structurally valid workload.
#[test]
fn decoder_survives_corruption() {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let pristine = encode_workload(&wl);
    let mut rng = Rng::new(0xC0A7);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        let i = rng.range_usize(0, bytes.len());
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        if let Ok(decoded) = decode_workload(&bytes) {
            // Whatever decoded must at least be internally consistent.
            for p in &decoded.phases {
                assert!(p.mlp >= 1);
            }
        }
    }
}
