//! Robustness and rare-path coverage: inclusive-L2 recalls into the tile,
//! trace-replay equivalence, and decoder fuzzing (seeded deterministic
//! random input via `common::Rng`) — for both the trace codec and the
//! write-ahead journal codec (DESIGN.md §14).

mod common;

use common::Rng;
use fusion_repro::accel::io::{decode_workload, encode_workload, read_workload, write_workload};
use fusion_repro::core::journal::{self, JournalHeader, JournalRow};
use fusion_repro::core::runner::{run_system, SystemKind};
use fusion_repro::core::{full_grid, SweepJob};
use fusion_repro::types::{CacheGeometry, SystemConfig};
use fusion_repro::workloads::{all_suites, build_suite, Scale, SuiteId};

/// A configuration whose L2 is barely larger than the L1X, forcing
/// inclusive-L2 evictions that recall blocks out of the accelerator tile —
/// a path ordinary runs never exercise (the 4 MB L2 swallows everything).
fn tiny_l2_config() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.l2 = CacheGeometry {
        capacity_bytes: 16 * 1024,
        ways: 2,
        banks: 2,
        latency: 20,
    };
    cfg
}

#[test]
fn inclusive_l2_recalls_do_not_break_any_system() {
    for id in [SuiteId::Filter, SuiteId::Histogram] {
        let wl = build_suite(id, Scale::Tiny);
        for kind in [
            SystemKind::Scratch,
            SystemKind::Shared,
            SystemKind::Fusion,
            SystemKind::FusionDx,
        ] {
            let res = run_system(kind, &wl, &tiny_l2_config()).unwrap();
            assert!(res.total_cycles > 0, "{id}/{kind} under a tiny L2");
        }
    }
}

#[test]
fn tiny_l2_costs_more_memory_traffic() {
    let wl = build_suite(SuiteId::Histogram, Scale::Tiny);
    let big = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let tiny = run_system(SystemKind::Fusion, &wl, &tiny_l2_config()).unwrap();
    assert!(
        tiny.energy.count(fusion_repro::energy::Component::Memory)
            > big.energy.count(fusion_repro::energy::Component::Memory),
        "a 16 kB L2 must spill to DRAM more often"
    );
    // And the simulation still attributes every cycle.
    let sum: u64 = tiny.phases.iter().map(|p| p.cycles).sum();
    assert_eq!(sum, tiny.total_cycles);
}

#[test]
fn replayed_traces_simulate_identically() {
    // The paper's workflow: materialize the trace once, replay everywhere.
    // Replaying must give bit-identical results to the fresh build.
    for id in all_suites() {
        let wl = build_suite(id, Scale::Tiny);
        let mut file = Vec::new();
        write_workload(&wl, &mut file).unwrap();
        let replayed = read_workload(file.as_slice()).unwrap();
        assert_eq!(wl, replayed, "{id}: lossy trace roundtrip");
        let a = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
        let b = run_system(SystemKind::Fusion, &replayed, &SystemConfig::small()).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles, "{id}");
        assert_eq!(a.energy, b.energy, "{id}");
    }
}

#[test]
fn prefetch_and_renewal_compose() {
    // Both extensions on together: still deterministic, still correct
    // accounting, and no slower than the plain configuration on a
    // streaming suite.
    let wl = build_suite(SuiteId::Tracking, Scale::Tiny);
    let plain = run_system(SystemKind::Fusion, &wl, &SystemConfig::small()).unwrap();
    let cfg = SystemConfig::small()
        .with_lease_renewal(true)
        .with_l1x_prefetch(4);
    let both = run_system(SystemKind::Fusion, &wl, &cfg).unwrap();
    assert!(both.total_cycles <= plain.total_cycles);
    let t = both.tile.unwrap();
    assert_eq!(t.l0_hits + t.l0_misses, t.l0_accesses);
}

/// The trace decoder never panics on arbitrary bytes — it returns a
/// structured error instead.
#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Rng::new(0xF422);
    for _ in 0..256 {
        let len = rng.range_usize(0, 512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.range_u8(0, 255)).collect();
        let _ = decode_workload(&bytes);
    }
}

/// Bit-flipping a valid trace never panics the decoder, and decoding
/// either fails cleanly or yields *some* structurally valid workload.
#[test]
fn decoder_survives_corruption() {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let pristine = encode_workload(&wl);
    let mut rng = Rng::new(0xC0A7);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        let i = rng.range_usize(0, bytes.len());
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        if let Ok(decoded) = decode_workload(&bytes) {
            // Whatever decoded must at least be internally consistent.
            for p in &decoded.phases {
                assert!(p.mlp >= 1);
            }
        }
    }
}

/// FNV-1a matching the trace format's trailing checksum, so fuzzed
/// structural damage reaches the parser instead of dying at the
/// checksum gate.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len() - 8;
    let mut h = 0xcbf29ce484222325u64;
    for &b in &bytes[6..n] {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    bytes[n..].copy_from_slice(&h.to_le_bytes());
}

/// Corruption with a *valid* checksum — the adversarial case for the
/// parser's own bounds checks (length-field overflow, truncated strings,
/// out-of-range sizes). Every outcome must be a clean `Result`, never a
/// panic or a runaway allocation.
#[test]
fn decoder_survives_resealed_structural_corruption() {
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let pristine = encode_workload(&wl);
    let mut rng = Rng::new(0x5EA1);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        // Damage the payload (past magic+version, before the checksum)
        // and recompute the seal so the parser sees the damage.
        let i = rng.range_usize(6, bytes.len() - 8);
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        reseal(&mut bytes);
        if let Ok(decoded) = decode_workload(&bytes) {
            for p in &decoded.phases {
                assert!(p.mlp >= 1);
                assert!(p.refs.iter().all(|r| r.size >= 1));
            }
        }
    }
    // Resealed truncation: cut the payload short and seal what remains
    // (strictly inside the payload, so the result is genuinely damaged).
    for _ in 0..64 {
        let keep = rng.range_usize(14, pristine.len() - 8);
        let mut bytes = pristine[..keep].to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        reseal(&mut bytes);
        assert!(
            decode_workload(&bytes).is_err(),
            "truncated-to-{keep} trace was accepted"
        );
    }
}

// ---- write-ahead journal codec (DESIGN.md §14), fuzzed the same way ----

/// The `SimResult` "system" string a journal row for this system label
/// must embed.
fn result_system(label: &str) -> &'static str {
    match label {
        "SC" => "SCRATCH",
        "SH" => "SHARED",
        "FU" => "FUSION",
        "FU-Dx" => "FUSION-Dx",
        other => panic!("unknown system label {other}"),
    }
}

/// A structurally valid journal row for a real grid job (constant trace
/// fingerprint `0x7e57`, matched by the resume closures below).
fn wal_row(job: &SweepJob) -> JournalRow {
    JournalRow {
        system: job.system.label().to_string(),
        suite: job.suite.label().to_string(),
        scale: "tiny".to_string(),
        variant: job.variant.clone(),
        config_hash: journal::config_fingerprint(&job.config),
        code_version: journal::code_version(),
        trace_fingerprint: 0x7e57,
        attempts: 1,
        backoff: 0,
        sim_events: 5,
        refs: 9,
        result_json: format!(
            "{{\"system\":\"{}\",\"total_cycles\":1}}",
            result_system(job.system.label())
        ),
    }
}

fn wal_header(grid: usize) -> JournalHeader {
    JournalHeader {
        scale: "tiny".to_string(),
        code_version: journal::code_version(),
        grid,
    }
}

/// The journal reader never panics on arbitrary bytes.
#[test]
fn journal_reader_never_panics_on_garbage() {
    let mut rng = Rng::new(0x3A11);
    for _ in 0..256 {
        let len = rng.range_usize(0, 512);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.range_u8(0, 255)).collect();
        // Sprinkle newlines so the line splitter has real work to do.
        for _ in 0..len / 16 {
            let i = rng.range_usize(0, len);
            bytes[i] = b'\n';
        }
        let rec = journal::read_journal(&bytes);
        assert!(rec.rows.is_empty(), "garbage decoded to a row");
    }
}

/// Bit-flipping a valid journal never panics and never splices: every
/// surviving row is byte-identical to one of the originals.
#[test]
fn journal_survives_bit_flips_without_splicing() {
    let jobs = full_grid(&SystemConfig::small());
    let rows: Vec<JournalRow> = jobs.iter().take(4).map(wal_row).collect();
    let mut text = journal::encode_header(&wal_header(jobs.len()));
    text.push('\n');
    for r in &rows {
        text.push_str(&journal::encode_row(r));
        text.push('\n');
    }
    let pristine = text.into_bytes();
    let mut rng = Rng::new(0xF1A6);
    for _ in 0..256 {
        let mut bytes = pristine.clone();
        let i = rng.range_usize(0, bytes.len());
        bytes[i] ^= 1 << rng.range_u8(0, 8);
        let rec = journal::read_journal(&bytes);
        assert!(rec.rows.len() <= rows.len());
        for row in &rec.rows {
            assert!(
                rows.contains(row),
                "bit flip at {i} spliced a damaged row: {row:?}"
            );
        }
    }
}

/// Corruption hiding behind a *valid* seal — the adversarial case for the
/// structural checks and the resume verification. Each forgery must be
/// dropped or re-run, never panic and never splice.
#[test]
fn resealed_journal_forgeries_are_contained() {
    let jobs = full_grid(&SystemConfig::small());
    let header = journal::encode_header(&wal_header(jobs.len()));
    let mut fp = |_suite: SuiteId| 0x7e57u64;

    // A row claiming SC whose payload came from a FUSION run, resealed:
    // the structural cross-check rejects it.
    let mut splice = wal_row(&jobs[0]);
    "SC".clone_into(&mut splice.system);
    splice.result_json = "{\"system\":\"FUSION\",\"total_cycles\":1}".to_string();
    let text = format!("{header}\n{}\n", journal::encode_row(&splice));
    let rec = journal::read_journal(text.as_bytes());
    assert!(rec.rows.is_empty());
    assert!(
        rec.warnings.iter().any(|w| w.contains("does not belong")),
        "{:?}",
        rec.warnings
    );

    // A half-truncated payload, resealed: the balanced-object check
    // rejects it.
    let mut torn = wal_row(&jobs[1]);
    torn.result_json = format!(
        "{{\"system\":\"{}\",\"x\":{{",
        result_system(jobs[1].system.label())
    );
    let text = format!("{header}\n{}\n", journal::encode_row(&torn));
    let rec = journal::read_journal(text.as_bytes());
    assert!(rec.rows.is_empty());

    // A stale code version with a valid seal: decoded, but resume
    // verification re-runs the point instead of splicing it.
    let mut stale = wal_row(&jobs[2]);
    stale.code_version = "0.0.0+wal0".to_string();
    let text = format!("{header}\n{}\n", journal::encode_row(&stale));
    let rec = journal::read_journal(text.as_bytes());
    assert_eq!(rec.rows.len(), 1);
    let plan =
        journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp).unwrap();
    assert_eq!(plan.resumed_count(), 0);
    assert!(
        plan.warnings.iter().any(|w| w.contains("stale")),
        "{:?}",
        plan.warnings
    );

    // A key tampered toward a grid point that doesn't exist: an orphan,
    // warned about and ignored — every live job still re-runs.
    let mut orphan = wal_row(&jobs[3]);
    orphan.variant = "l0x999k".to_string();
    let text = format!("{header}\n{}\n", journal::encode_row(&orphan));
    let rec = journal::read_journal(text.as_bytes());
    let plan =
        journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp).unwrap();
    assert_eq!(plan.resumed_count(), 0);
    assert!(
        plan.warnings
            .iter()
            .any(|w| w.contains("match no current grid point")),
        "{:?}",
        plan.warnings
    );
}

/// Interleaved duplicate keys (two writers raced, or a splice): every
/// copy is dropped with a warning and the point re-runs — splicing either
/// copy silently would be guessing.
#[test]
fn interleaved_duplicate_keys_are_skipped_and_rerun() {
    let jobs = full_grid(&SystemConfig::small());
    let a = wal_row(&jobs[0]);
    let b = wal_row(&jobs[1]);
    let mut dup = wal_row(&jobs[0]);
    dup.sim_events = 999; // divergent duplicate — neither copy is trustworthy
    let text = format!(
        "{}\n{}\n{}\n{}\n",
        journal::encode_header(&wal_header(jobs.len())),
        journal::encode_row(&a),
        journal::encode_row(&b),
        journal::encode_row(&dup),
    );
    let rec = journal::read_journal(text.as_bytes());
    assert_eq!(rec.rows.len(), 1, "only the unduplicated row survives");
    assert_eq!(rec.rows[0], b);
    assert!(rec.warnings.iter().any(|w| w.contains("duplicate")));

    let mut fp = |_suite: SuiteId| 0x7e57u64;
    let plan =
        journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp).unwrap();
    assert_eq!(plan.resumed_count(), 1);
    assert!(plan.resumed[0].is_none(), "duplicated key must re-run");
    assert!(plan.resumed[1].is_some());
}

/// Tearing the journal at every byte of its tail never panics and never
/// loses the verified prefix.
#[test]
fn torn_tails_at_every_byte_keep_the_prefix() {
    let jobs = full_grid(&SystemConfig::small());
    let a = wal_row(&jobs[0]);
    let b = wal_row(&jobs[1]);
    let text = format!(
        "{}\n{}\n{}\n",
        journal::encode_header(&wal_header(jobs.len())),
        journal::encode_row(&a),
        journal::encode_row(&b),
    );
    let bytes = text.as_bytes();
    let second_row_start = text.len() - (journal::encode_row(&b).len() + 1);
    for cut in second_row_start..bytes.len() {
        let rec = journal::read_journal(&bytes[..cut]);
        assert!(rec.header.is_some(), "cut {cut} lost the header");
        assert_eq!(rec.rows[0], a, "cut {cut} lost the first row");
        if cut < bytes.len() {
            assert!(rec.rows.len() == 1 || cut == bytes.len() - 1);
        }
    }
}
