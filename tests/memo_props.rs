//! Property tests for the phase-memo signature tables (DESIGN.md §13).
//!
//! Driven by the seeded splitmix64 generator in `tests/common` (same
//! convention as `engine_props.rs`): random config mutations probe the
//! two directions of the [`fusion_core::phase_key`] contract —
//!
//! * **soundness of equality**: if every phase key of a run matches
//!   across two configs, replaying the run under either config produces
//!   byte-identical stats (`SimResult::to_json`);
//! * **sensitivity**: mutating any phase-relevant field changes the key
//!   (so a stale memo entry can never be addressed by the new config).
//!
//! A third property exercises the [`fusion_core::PhaseMemo`] cache
//! itself: splices require the producer's entry digest bit-for-bit, and
//! a mismatched digest falls back to replay instead of a wrong answer.

mod common;

use common::Rng;
use fusion_core::{phase_key, run_system, MemoMark, MemoProbe, PhaseMemo, RunKey, SystemKind};
use fusion_types::{SystemConfig, WritePolicy};
use fusion_workloads::{build_suite, Scale, SuiteId};

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Scratch,
    SystemKind::Shared,
    SystemKind::Fusion,
    SystemKind::FusionDx,
];

/// Applies one randomly-chosen, randomly-sized mutation from `fields`,
/// returning its index (so failures name the culprit).
fn mutate(
    cfg: &mut SystemConfig,
    rng: &mut Rng,
    fields: &[fn(&mut SystemConfig, &mut Rng)],
) -> usize {
    let pick = rng.range_usize(0, fields.len());
    fields[pick](cfg, rng);
    pick
}

/// Mutations of fields *outside* every slice of `system` — applying any
/// of them must leave all of the system's phase keys unchanged.
fn irrelevant_fields(system: SystemKind) -> Vec<fn(&mut SystemConfig, &mut Rng)> {
    let sp: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.scratchpad.capacity_bytes = 1 << r.range_usize(10, 16);
    let l0x: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.l0x.capacity_bytes = 1 << r.range_usize(10, 16);
    let l1x: fn(&mut SystemConfig, &mut Rng) = |c, r| c.l1x.latency = r.range_u64(1, 9);
    let axc_link: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.link_axc_l1x.latency = r.range_u64(1, 9);
    let dx_link: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.link_l0x_l0x.latency = r.range_u64(1, 9);
    let lease: fn(&mut SystemConfig, &mut Rng) = |c, r| c.default_lease = r.range_u32(100, 2000);
    let wp: fn(&mut SystemConfig, &mut Rng) = |c, _| {
        c.write_policy = match c.write_policy {
            WritePolicy::WriteBack => WritePolicy::WriteThrough,
            WritePolicy::WriteThrough => WritePolicy::WriteBack,
        }
    };
    let prefetch: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.l1x_prefetch_degree = r.range_usize(0, 5);
    let tag: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.timestamp_tag_overhead = r.range_u64(0, 30) as f64 / 100.0;
    match system {
        // SCRATCH never touches the coherent-accelerator machinery.
        SystemKind::Scratch => vec![l0x, l1x, axc_link, dx_link, lease, wp, prefetch, tag],
        // SHARED has no private L0X, scratchpad, leases or Dx link.
        SystemKind::Shared => vec![sp, l0x, dx_link, lease, wp, prefetch],
        // FUSION ignores the scratchpad and the Dx-only link.
        SystemKind::Fusion => vec![sp, dx_link],
        // FUSION-Dx ignores only the scratchpad.
        SystemKind::FusionDx => vec![sp],
    }
}

/// Mutations of fields *inside* the slice of every phase of `system`.
fn relevant_fields(system: SystemKind) -> Vec<fn(&mut SystemConfig, &mut Rng)> {
    let l2: fn(&mut SystemConfig, &mut Rng) = |c, r| c.l2.latency = r.range_u64(10, 40);
    let host_l1: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.host_l1.capacity_bytes = 1 << r.range_usize(13, 18);
    let mem: fn(&mut SystemConfig, &mut Rng) = |c, r| c.memory_latency = r.range_u64(100, 400);
    let l2_link: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.link_l1x_l2.latency = r.range_u64(1, 20);
    let ctl: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.control_message_bytes = 8 * r.range_u64(1, 5);
    let mut fields = vec![l2, host_l1, mem, l2_link, ctl];
    let sp: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.scratchpad.capacity_bytes = 1 << r.range_usize(10, 16);
    let l1x: fn(&mut SystemConfig, &mut Rng) = |c, r| c.l1x.latency = r.range_u64(1, 9);
    let l0x: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.l0x.capacity_bytes = 1 << r.range_usize(10, 16);
    let lease: fn(&mut SystemConfig, &mut Rng) = |c, r| c.default_lease = r.range_u32(100, 2000);
    let dx_link: fn(&mut SystemConfig, &mut Rng) =
        |c, r| c.link_l0x_l0x.latency = r.range_u64(1, 9);
    match system {
        // Scratchpad geometry reaches SCRATCH accelerator phases only, so
        // it is exercised by the dedicated accel-phase assertion below,
        // not listed here (these fields must flip *every* phase's key).
        SystemKind::Scratch => {}
        SystemKind::Shared => fields.push(l1x),
        SystemKind::Fusion => fields.extend([l1x, l0x, lease]),
        SystemKind::FusionDx => fields.extend([l1x, l0x, lease, dx_link]),
    }
    let _ = (sp, dx_link);
    fields
}

/// Equal keys across every phase ⇒ byte-identical stats. 24 random
/// irrelevant mutations per system, replayed end-to-end on a tiny suite.
#[test]
fn equal_phase_keys_imply_identical_results() {
    let mut rng = Rng::new(0xF0510);
    let base = SystemConfig::small();
    for system in SYSTEMS {
        let fields = irrelevant_fields(system);
        for trial in 0..24 {
            let mut mutated = base.clone();
            // One to three stacked irrelevant mutations.
            let n = rng.range_usize(1, 4);
            let mut picked = Vec::new();
            for _ in 0..n {
                picked.push(mutate(&mut mutated, &mut rng, &fields));
            }
            let suite = SuiteId::ALL[rng.range_usize(0, SuiteId::ALL.len())];
            let wl = build_suite(suite, Scale::Tiny);
            for (idx, phase) in wl.phases.iter().enumerate() {
                assert_eq!(
                    phase_key(system, idx, phase.unit.is_host(), &base),
                    phase_key(system, idx, phase.unit.is_host(), &mutated),
                    "{system:?} trial {trial}: irrelevant mutations {picked:?} moved the key of phase {idx}"
                );
            }
            let a = run_system(system, &wl, &base).expect("base run");
            let b = run_system(system, &wl, &mutated).expect("mutated run");
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{system:?}/{suite:?} trial {trial}: keys equal but stats differ (mutations {picked:?})"
            );
        }
    }
}

/// Any phase-relevant mutation flips the key of every phase (and the
/// scratchpad axis flips SCRATCH accelerator phases specifically).
#[test]
fn relevant_mutations_change_every_phase_key() {
    let mut rng = Rng::new(0xF0511);
    let base = SystemConfig::small();
    for system in SYSTEMS {
        let fields = relevant_fields(system);
        for trial in 0..24 {
            let mut mutated = base.clone();
            let picked = mutate(&mut mutated, &mut rng, &fields);
            if mutated == base {
                // The random draw reproduced the existing value; a no-op
                // mutation legitimately leaves the key alone.
                continue;
            }
            for idx in 0..4 {
                for is_host in [false, true] {
                    assert_ne!(
                        phase_key(system, idx, is_host, &base),
                        phase_key(system, idx, is_host, &mutated),
                        "{system:?} trial {trial}: relevant mutation {picked} left phase {idx} (host={is_host}) unkeyed"
                    );
                }
            }
        }
    }
    // The scratchpad axis is phase-scoped on SCRATCH: accelerator phases
    // re-key, host phases do not.
    let mut bigger = base.clone();
    bigger.scratchpad.capacity_bytes *= 2;
    assert_ne!(
        phase_key(SystemKind::Scratch, 0, false, &base),
        phase_key(SystemKind::Scratch, 0, false, &bigger)
    );
    assert_eq!(
        phase_key(SystemKind::Scratch, 0, true, &base),
        phase_key(SystemKind::Scratch, 0, true, &bigger)
    );
}

/// The cache itself: a splice needs the producer's entry digest
/// bit-for-bit; any flipped digest bit falls back to a replay.
#[test]
fn memo_splices_only_on_exact_entry_digest() {
    let mut rng = Rng::new(0xF0512);
    let memo = PhaseMemo::new();
    let wl = build_suite(SuiteId::Adpcm, Scale::Tiny);
    let res = run_system(SystemKind::Scratch, &wl, &SystemConfig::small()).expect("run");
    for trial in 0..32 {
        let key = RunKey {
            system: SystemKind::Scratch,
            suite: SuiteId::Adpcm,
            scale: Scale::Tiny,
            fold: rng.next_u64(),
            phases: wl.phases.len(),
        };
        let digest = (rng.next_u64(), rng.next_u64());
        let phases = wl.phases.len() as u64;
        let producer = MemoProbe::new(&memo, key);
        assert!(producer.try_splice(digest, phases).is_none(), "cold cache");
        producer.record(digest, &res, phases);

        let consumer = MemoProbe::new(&memo, key);
        let spliced = consumer
            .try_splice(digest, phases)
            .expect("same digest splices");
        assert_eq!(spliced.to_json(), res.to_json(), "trial {trial}");
        assert_eq!(consumer.mark(), MemoMark::Hit);

        // Flip one random bit of one lane: must fall back, not splice.
        let bit = 1u64 << rng.range_u64(0, 64);
        let bad = if rng.chance() {
            (digest.0 ^ bit, digest.1)
        } else {
            (digest.0, digest.1 ^ bit)
        };
        let skeptic = MemoProbe::new(&memo, key);
        assert!(
            skeptic.try_splice(bad, phases).is_none(),
            "trial {trial}: digest mismatch must not splice"
        );
        assert_eq!(skeptic.mark(), MemoMark::Fallback);
    }
    let stats = memo.stats();
    assert_eq!(stats.hits, 32);
    assert_eq!(stats.digest_fallbacks, 32);
    assert_eq!(stats.misses, 32);
}
