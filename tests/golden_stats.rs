//! Golden-stats snapshots: the committed `sim run --json` output for every
//! system on two suites at `Scale::Small` must reproduce byte-for-byte.
//!
//! The snapshots under `tests/golden/` were captured before the hot-path
//! overhaul (shared decoded traces, FxHash maps, pow2 index masks), so
//! this suite is the proof that the overhaul is invisible in every
//! simulated statistic — not just the headline cycle counts. `SimResult::
//! to_json` deliberately excludes host-side `RunMetrics`, which is what
//! makes the byte comparison stable across machines and runs.

use fusion_core::{run_system, SystemKind};
use fusion_types::{CheckerConfig, SystemConfig};
use fusion_workloads::{build_suite, Scale, SuiteId};

const CASES: [(&str, SuiteId, &str, SystemKind, &str); 8] = [
    (
        "fft",
        SuiteId::Fft,
        "sc",
        SystemKind::Scratch,
        include_str!("golden/fft_sc.json"),
    ),
    (
        "fft",
        SuiteId::Fft,
        "sh",
        SystemKind::Shared,
        include_str!("golden/fft_sh.json"),
    ),
    (
        "fft",
        SuiteId::Fft,
        "fu",
        SystemKind::Fusion,
        include_str!("golden/fft_fu.json"),
    ),
    (
        "fft",
        SuiteId::Fft,
        "fu-dx",
        SystemKind::FusionDx,
        include_str!("golden/fft_fu-dx.json"),
    ),
    (
        "adpcm",
        SuiteId::Adpcm,
        "sc",
        SystemKind::Scratch,
        include_str!("golden/adpcm_sc.json"),
    ),
    (
        "adpcm",
        SuiteId::Adpcm,
        "sh",
        SystemKind::Shared,
        include_str!("golden/adpcm_sh.json"),
    ),
    (
        "adpcm",
        SuiteId::Adpcm,
        "fu",
        SystemKind::Fusion,
        include_str!("golden/adpcm_fu.json"),
    ),
    (
        "adpcm",
        SuiteId::Adpcm,
        "fu-dx",
        SystemKind::FusionDx,
        include_str!("golden/adpcm_fu-dx.json"),
    ),
];

#[test]
fn every_golden_snapshot_reproduces_byte_for_byte() {
    let cfg = SystemConfig::small();
    for (suite_name, suite, sys_name, kind, golden) in CASES {
        let wl = build_suite(suite, Scale::Small);
        let res = run_system(kind, &wl, &cfg).unwrap();
        // Snapshots were written via shell redirection and carry a
        // trailing newline; the JSON bytes themselves must match exactly.
        assert_eq!(
            res.to_json(),
            golden.trim_end(),
            "stats drifted from tests/golden/{suite_name}_{sys_name}.json — \
             the hot path is supposed to be result-invisible"
        );
    }
}

/// The runtime protocol checker is purely observational: a clean
/// checker-on run must reproduce the same golden bytes as the trusted
/// path. This pins the refactor of `acc`/`mesi` onto the shared pure
/// transition functions — if checker-mode validation ever perturbed
/// timing or stats, the snapshots would catch it here.
#[test]
fn checker_enabled_runs_match_the_golden_snapshots() {
    let cfg = SystemConfig::small().with_checker(CheckerConfig::enabled());
    for (suite_name, suite, sys_name, kind, golden) in CASES {
        let wl = build_suite(suite, Scale::Small);
        let res = run_system(kind, &wl, &cfg).unwrap();
        assert_eq!(
            res.to_json(),
            golden.trim_end(),
            "checker-on stats drifted from tests/golden/{suite_name}_{sys_name}.json — \
             the checker is supposed to be observational"
        );
    }
}

#[test]
fn golden_snapshots_cover_every_system_on_both_suites() {
    for suite in ["fft", "adpcm"] {
        let mut labels: Vec<&str> = CASES
            .iter()
            .filter(|c| c.0 == suite)
            .map(|c| c.3.label())
            .collect();
        labels.sort_unstable();
        assert_eq!(labels, ["FU", "FU-Dx", "SC", "SH"]);
    }
}
