//! The sweep subsystem's central guarantee: fanning the evaluation grid
//! over the worker pool changes *nothing* about the simulated outcomes.
//!
//! Every simulation is a pure function of `(system, workload, config)`,
//! and `SimResult` equality deliberately ignores the host-side
//! `RunMetrics`, so the guarantee is expressible as plain `==` between
//! the parallel outcomes and sequential `run_system` calls.

use fusion_core::journal::{self, JournalHeader, JournalSink, JournalWriter};
use fusion_core::{design_grid, full_grid, run_system, MemoMark, Sweep, TraceCache};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale};

#[test]
fn parallel_sweep_matches_sequential_runs_over_full_grid() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    assert_eq!(jobs.len(), 4 * 7, "grid must cover every (system, suite)");

    let outcomes = Sweep::new(Scale::Tiny).run(jobs.clone());
    assert_eq!(outcomes.len(), jobs.len());

    for (job, outcome) in jobs.iter().zip(&outcomes) {
        // Outcomes come back in grid order with the job echoed back.
        assert_eq!(outcome.job.system, job.system);
        assert_eq!(outcome.job.suite, job.suite);

        let wl = build_suite(job.suite, Scale::Tiny);
        let sequential = run_system(job.system, &wl, &job.config);
        assert_eq!(
            outcome.result, sequential,
            "{} on {:?} diverged between pool and sequential run",
            job.system, job.suite
        );
    }
}

#[test]
fn repeated_parallel_sweeps_agree_with_each_other() {
    let cfg = SystemConfig::small();
    let shared = std::sync::Arc::new(TraceCache::new());
    let a = Sweep::new(Scale::Tiny)
        .with_trace_cache(std::sync::Arc::clone(&shared))
        .run(full_grid(&cfg));
    let b = Sweep::new(Scale::Tiny)
        .threads(2)
        .with_trace_cache(shared)
        .run(full_grid(&cfg));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.result, y.result);
    }
}

/// The differential-sweep guarantee (DESIGN.md §13): over the full
/// design-space grid, memo-on output is byte-identical to memo-off —
/// every spliced grid point carries exactly the stats a full replay
/// would have produced, down to the JSON rendering.
#[test]
fn memo_on_matches_memo_off_over_design_grid() {
    let cfg = SystemConfig::small();
    let jobs = design_grid(&cfg);
    assert_eq!(jobs.len(), 7 * 28, "base grid plus six capacity variants");

    let shared = std::sync::Arc::new(TraceCache::new());
    // Sequential memo-on pass: grid order guarantees every producer (the
    // base block runs first) records before its consumers probe, so the
    // hit count below is exact. Parallel sweeps are just as correct but
    // may replay a consumer that probed before its producer finished.
    let on = Sweep::new(Scale::Tiny)
        .threads(1)
        .with_trace_cache(std::sync::Arc::clone(&shared))
        .run(jobs.clone());
    let off = Sweep::new(Scale::Tiny)
        .memo(false)
        .with_trace_cache(shared)
        .run(jobs);

    let mut hits = 0usize;
    for (x, y) in on.iter().zip(&off) {
        let a = x.expect_result();
        let b = y.expect_result();
        assert_eq!(a, b, "{} memo-on diverged from memo-off", x.job.label());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{} JSON rendering diverged",
            x.job.label()
        );
        assert_eq!(y.memo.mark, MemoMark::Off);
        if x.memo.mark == MemoMark::Hit {
            hits += 1;
        }
        assert_ne!(
            x.memo.mark,
            MemoMark::Fallback,
            "{} fell back: a signature slice is too narrow",
            x.job.label()
        );
    }
    // SC+SH splice across the L0X axis (2×7×3), SH+FU+FU-Dx across the
    // scratchpad axis (3×7×3), plus SCRATCH host-phase-only... the run-
    // level splice needs *every* phase independent, so SC jobs on the
    // scratchpad axis replay. 42 + 63 = 105 spliced points.
    assert_eq!(hits, 105, "design grid must splice every eligible point");
}

/// The determinism guarantee survives `--journal`: recording the
/// write-ahead journal changes nothing about the outcomes, and the
/// journal it leaves behind resumes the whole grid with payloads
/// byte-identical to what the jobs produced (DESIGN.md §14).
#[test]
fn journaled_sweep_matches_plain_sweep_and_is_fully_resumable() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    let traces = std::sync::Arc::new(TraceCache::new());
    let plain = Sweep::new(Scale::Tiny)
        .with_trace_cache(std::sync::Arc::clone(&traces))
        .run(jobs.clone());

    let path = std::env::temp_dir().join(format!("fusion_det_wal_{}.jsonl", std::process::id()));
    let header = JournalHeader {
        scale: "tiny".to_string(),
        code_version: journal::code_version(),
        grid: jobs.len(),
    };
    let writer = JournalWriter::create(&path, &header).unwrap();
    let journaled = Sweep::new(Scale::Tiny)
        .with_trace_cache(std::sync::Arc::clone(&traces))
        .with_journal(std::sync::Arc::new(JournalSink::new(writer)))
        .run(jobs.clone());

    for (x, y) in plain.iter().zip(&journaled) {
        assert_eq!(
            x.result,
            y.result,
            "{}: journaling changed a result",
            x.job.label()
        );
    }

    let rec = journal::read_journal(&std::fs::read(&path).unwrap());
    std::fs::remove_file(&path).ok();
    assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
    let mut fp = |suite| traces.get(suite, Scale::Tiny).fingerprint();
    let plan =
        journal::plan_resume(&jobs, Scale::Tiny, &rec, &journal::code_version(), &mut fp).unwrap();
    assert_eq!(plan.resumed_count(), jobs.len(), "every point must resume");
    for (row, outcome) in plan.resumed.iter().zip(&plain) {
        assert_eq!(
            row.as_ref().unwrap().result_json,
            outcome.result.as_ref().unwrap().to_json(),
            "{}: journaled payload diverged",
            outcome.job.label()
        );
    }
}
