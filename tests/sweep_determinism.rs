//! The sweep subsystem's central guarantee: fanning the evaluation grid
//! over the worker pool changes *nothing* about the simulated outcomes.
//!
//! Every simulation is a pure function of `(system, workload, config)`,
//! and `SimResult` equality deliberately ignores the host-side
//! `RunMetrics`, so the guarantee is expressible as plain `==` between
//! the parallel outcomes and sequential `run_system` calls.

use fusion_core::{full_grid, run_system, Sweep, TraceCache};
use fusion_types::SystemConfig;
use fusion_workloads::{build_suite, Scale};

#[test]
fn parallel_sweep_matches_sequential_runs_over_full_grid() {
    let cfg = SystemConfig::small();
    let jobs = full_grid(&cfg);
    assert_eq!(jobs.len(), 4 * 7, "grid must cover every (system, suite)");

    let outcomes = Sweep::new(Scale::Tiny).run(jobs.clone());
    assert_eq!(outcomes.len(), jobs.len());

    for (job, outcome) in jobs.iter().zip(&outcomes) {
        // Outcomes come back in grid order with the job echoed back.
        assert_eq!(outcome.job.system, job.system);
        assert_eq!(outcome.job.suite, job.suite);

        let wl = build_suite(job.suite, Scale::Tiny);
        let sequential = run_system(job.system, &wl, &job.config);
        assert_eq!(
            outcome.result, sequential,
            "{} on {:?} diverged between pool and sequential run",
            job.system, job.suite
        );
    }
}

#[test]
fn repeated_parallel_sweeps_agree_with_each_other() {
    let cfg = SystemConfig::small();
    let shared = std::sync::Arc::new(TraceCache::new());
    let a = Sweep::new(Scale::Tiny)
        .with_trace_cache(std::sync::Arc::clone(&shared))
        .run(full_grid(&cfg));
    let b = Sweep::new(Scale::Tiny)
        .threads(2)
        .with_trace_cache(shared)
        .run(full_grid(&cfg));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.result, y.result);
    }
}
