//! FxHash regression suite: swapping the hot maps from `std::HashMap`
//! (SipHash + `RandomState`) to the deterministic `FxHashMap` must be a
//! pure speed change.
//!
//! The unit tests in `fusion_types::hash` already pin the hash function
//! itself (fixed vectors, so any process on any machine agrees). These
//! tests replay *recorded traces* — real key/op sequences shaped like the
//! two hottest maps in the simulator — against both map types side by
//! side and demand identical answers at every step:
//!
//! * the ACC directory's forward-rule map, keyed `(Pid, BlockAddr)` and
//!   populated from `forward_pairs_windowed` over a real workload;
//! * the AX-RMAP reverse map, keyed by physical block index (`u64`) with
//!   insert/lookup/remove churn as blocks enter and leave the L1X.

use std::collections::HashMap;

use fusion_accel::analysis::forward_pairs_windowed;
use fusion_accel::DecodedTrace;
use fusion_types::hash::FxHashMap;
use fusion_types::{BlockAddr, Pid};
use fusion_workloads::{build_suite, Scale, SuiteId};

#[test]
fn acc_forward_rule_map_matches_std_hashmap_on_recorded_trace() {
    // Disparity is the pipeline suite: it is where FUSION-Dx actually
    // finds producer->consumer pairs, so the rule map is non-trivial.
    let wl = build_suite(SuiteId::Disparity, Scale::Tiny);
    let pairs = forward_pairs_windowed(&wl, 64);
    assert!(
        !pairs.is_empty(),
        "recorded trace must exercise the rule map"
    );

    // Build both maps from the same recorded pairs, exactly the way the
    // FUSION system builds its per-phase rule maps.
    let mut std_map: HashMap<(Pid, BlockAddr), Vec<usize>> = HashMap::new();
    let mut fx_map: FxHashMap<(Pid, BlockAddr), Vec<usize>> = FxHashMap::default();
    for (i, p) in pairs.iter().enumerate() {
        std_map.entry((wl.pid, p.block)).or_default().push(i);
        fx_map.entry((wl.pid, p.block)).or_default().push(i);
    }
    assert_eq!(std_map.len(), fx_map.len());

    // Probe with every block the trace touches (hits and misses alike),
    // in program order — the lookup pattern of `AccDirectory::forward_for`.
    let decoded = DecodedTrace::decode(&wl);
    for idx in 0..decoded.phase_count() {
        let dp = decoded.phase(idx);
        for &b in dp.blocks {
            assert_eq!(std_map.get(&(wl.pid, b)), fx_map.get(&(wl.pid, b)));
        }
    }

    // Drain both maps through removals and compare the final contents.
    let mut keys: Vec<(Pid, BlockAddr)> = std_map.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        assert_eq!(std_map.remove(&k), fx_map.remove(&k));
    }
    assert!(fx_map.is_empty());
}

#[test]
fn ax_rmap_style_u64_churn_matches_std_hashmap() {
    // Replay an AX-RMAP-shaped op sequence recorded from a real trace:
    // insert on fill, lookup on snoop, remove on eviction (modelled here
    // as: every third distinct block gets evicted and refilled).
    let wl = build_suite(SuiteId::Fft, Scale::Tiny);
    let decoded = DecodedTrace::decode(&wl);

    let mut std_map: HashMap<u64, u64> = HashMap::new();
    let mut fx_map: FxHashMap<u64, u64> = FxHashMap::default();
    let mut op = 0u64;
    for idx in 0..decoded.phase_count() {
        let dp = decoded.phase(idx);
        for &b in dp.blocks {
            let key = b.index();
            op += 1;
            assert_eq!(std_map.get(&key), fx_map.get(&key), "lookup #{op}");
            if key % 3 == 0 {
                assert_eq!(std_map.remove(&key), fx_map.remove(&key));
            }
            assert_eq!(std_map.insert(key, op), fx_map.insert(key, op));
        }
    }
    assert_eq!(std_map.len(), fx_map.len());
    let mut a: Vec<(u64, u64)> = std_map.into_iter().collect();
    let mut b: Vec<(u64, u64)> = fx_map.into_iter().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}
